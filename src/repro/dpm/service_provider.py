"""The service provider (SP) model.

Section III models the SP as a stationary controllable CTMC described by
the quadruple ``(chi, mu(s), pow(s), ene(si, sj))``:

- ``chi`` -- the *switching speed* matrix; ``chi[i, j]`` is the rate of
  the exponentially-distributed mode switch ``si -> sj`` (the average
  switching time is ``1 / chi[i, j]``). The paper sets
  ``chi[i, i] = infinity`` (self-switches are instantaneous); we keep it
  implicit and expose :attr:`ServiceProvider.self_switch_rate`, a large
  finite rate, wherever the joint model needs a numeric value.
- ``mu(s)`` -- the service rate in mode ``s``; ``1/mu(s)`` is the mean
  time to serve one request. Modes with ``mu > 0`` are *active*, the
  rest *inactive* (Section III's ``S_active`` / ``S_inactive`` split).
- ``pow(s)`` -- the power-consumption rate of mode ``s``.
- ``ene(si, sj)`` -- the energy of the ``si -> sj`` switch.

Actions are destination modes: issuing command ``a`` in mode ``s``
starts an exponential switch with rate ``chi[s, a]`` (Example 4.1).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.errors import InvalidModelError

#: Finite stand-in for the paper's infinite self-switch speed. The mean
#: self-switch dwell ``1/DEFAULT_SELF_SWITCH_RATE`` must be negligible
#: against every real time constant of the model (service times are
#: seconds; this is 0.1 ms).
DEFAULT_SELF_SWITCH_RATE = 1e4


class ServiceProvider:
    """A multi-mode server: the paper's SP quadruple.

    Parameters
    ----------
    modes:
        Unique mode names, e.g. ``("active", "waiting", "sleeping")``.
    switching_rates:
        ``S x S`` matrix of switching speeds ``chi``; off-diagonal
        entries must be positive (every commanded switch completes in
        finite expected time). The diagonal is ignored.
    service_rates:
        Per-mode ``mu``; non-negative, and at least one mode must be
        active (``mu > 0``) or no request could ever be served.
    power:
        Per-mode power rates ``pow`` (watts); non-negative.
    switching_energy:
        ``S x S`` matrix ``ene`` of per-switch energies (joules); the
        diagonal is ignored and self-switches cost nothing.
    self_switch_rate:
        Finite numeric stand-in for the instantaneous self-switch.
    """

    def __init__(
        self,
        modes: Sequence[str],
        switching_rates: np.ndarray,
        service_rates: Sequence[float],
        power: Sequence[float],
        switching_energy: np.ndarray,
        self_switch_rate: float = DEFAULT_SELF_SWITCH_RATE,
    ) -> None:
        self._modes: Tuple[str, ...] = tuple(modes)
        if len(set(self._modes)) != len(self._modes):
            raise InvalidModelError("mode names must be unique")
        s = len(self._modes)
        if s == 0:
            raise InvalidModelError("a service provider needs at least one mode")
        chi = np.asarray(switching_rates, dtype=float)
        if chi.shape != (s, s):
            raise InvalidModelError(
                f"switching_rates shape {chi.shape} does not match {s} modes"
            )
        off_diag = chi[~np.eye(s, dtype=bool)]
        if np.any(off_diag <= 0) or not np.all(np.isfinite(off_diag)):
            raise InvalidModelError(
                "all off-diagonal switching rates must be positive and finite"
            )
        mu = np.asarray(service_rates, dtype=float)
        if mu.shape != (s,):
            raise InvalidModelError(
                f"service_rates shape {mu.shape} does not match {s} modes"
            )
        if not np.all(np.isfinite(mu)):
            raise InvalidModelError("service rates must be finite")
        if np.any(mu < 0):
            raise InvalidModelError("service rates must be non-negative")
        if not np.any(mu > 0):
            raise InvalidModelError("at least one mode must be active (mu > 0)")
        p = np.asarray(power, dtype=float)
        if p.shape != (s,):
            raise InvalidModelError(f"power shape {p.shape} does not match {s} modes")
        if not np.all(np.isfinite(p)):
            raise InvalidModelError("power rates must be finite")
        if np.any(p < 0):
            raise InvalidModelError("power rates must be non-negative")
        ene = np.asarray(switching_energy, dtype=float)
        if ene.shape != (s, s):
            raise InvalidModelError(
                f"switching_energy shape {ene.shape} does not match {s} modes"
            )
        if not np.all(np.isfinite(ene[~np.eye(s, dtype=bool)])):
            raise InvalidModelError("switching energies must be finite")
        if np.any(ene[~np.eye(s, dtype=bool)] < 0):
            raise InvalidModelError("switching energies must be non-negative")
        if self_switch_rate <= 0 or not np.isfinite(self_switch_rate):
            raise InvalidModelError("self_switch_rate must be positive and finite")
        self._chi = chi.copy()
        np.fill_diagonal(self._chi, 0.0)
        self._mu = mu.copy()
        self._power = p.copy()
        self._ene = ene.copy()
        np.fill_diagonal(self._ene, 0.0)
        self._self_switch_rate = float(self_switch_rate)
        self._index: Dict[str, int] = {m: i for i, m in enumerate(self._modes)}

    @classmethod
    def from_switching_times(
        cls,
        modes: Sequence[str],
        switching_times: np.ndarray,
        service_rates: Sequence[float],
        power: Sequence[float],
        switching_energy: np.ndarray,
        self_switch_rate: float = DEFAULT_SELF_SWITCH_RATE,
    ) -> "ServiceProvider":
        """Build from *average switching times* (the paper's Eqn. 4.1(a)).

        Times are ``1 / chi``; the diagonal of *switching_times* is
        ignored.
        """
        t = np.asarray(switching_times, dtype=float)
        if t.ndim != 2 or t.shape[0] != t.shape[1]:
            raise InvalidModelError(f"switching_times must be square, got {t.shape}")
        off = t[~np.eye(t.shape[0], dtype=bool)]
        if np.any(off <= 0):
            raise InvalidModelError("all off-diagonal switching times must be positive")
        chi = np.zeros_like(t)
        mask = ~np.eye(t.shape[0], dtype=bool)
        chi[mask] = 1.0 / t[mask]
        return cls(
            modes, chi, service_rates, power, switching_energy, self_switch_rate
        )

    # -- accessors ---------------------------------------------------------

    @property
    def modes(self) -> Tuple[str, ...]:
        return self._modes

    @property
    def n_modes(self) -> int:
        return len(self._modes)

    @property
    def self_switch_rate(self) -> float:
        return self._self_switch_rate

    def index_of(self, mode: str) -> int:
        try:
            return self._index[mode]
        except KeyError:
            raise InvalidModelError(f"unknown mode {mode!r}") from None

    def service_rate(self, mode: str) -> float:
        """``mu(s)``; zero for inactive modes."""
        return float(self._mu[self.index_of(mode)])

    def power_rate(self, mode: str) -> float:
        """``pow(s)`` in watts."""
        return float(self._power[self.index_of(mode)])

    def switching_rate(self, source: str, dest: str) -> float:
        """``chi[source, dest]``; the self-switch stand-in on the diagonal."""
        i, j = self.index_of(source), self.index_of(dest)
        return self._self_switch_rate if i == j else float(self._chi[i, j])

    def switching_time(self, source: str, dest: str) -> float:
        """Mean switch duration ``1 / chi``; ~0 for self-switches."""
        return 1.0 / self.switching_rate(source, dest)

    def switching_energy(self, source: str, dest: str) -> float:
        """``ene(source, dest)``; zero on the diagonal."""
        return float(self._ene[self.index_of(source), self.index_of(dest)])

    def is_active(self, mode: str) -> bool:
        return self.service_rate(mode) > 0.0

    @property
    def active_modes(self) -> Tuple[str, ...]:
        """Modes with ``mu > 0`` (the paper's ``S_active``)."""
        return tuple(m for m in self._modes if self.is_active(m))

    @property
    def inactive_modes(self) -> Tuple[str, ...]:
        """Modes with ``mu = 0`` (the paper's ``S_inactive``)."""
        return tuple(m for m in self._modes if not self.is_active(m))

    def wakeup_time(self, mode: str) -> float:
        """Mean time to reach the quickest active mode; 0 if active.

        Used by the paper's constraint (2): at a full queue an inactive
        SP may not move to a mode with a *longer* wakeup time.
        """
        if self.is_active(mode):
            return 0.0
        return min(self.switching_time(mode, a) for a in self.active_modes)

    def service_time(self, mode: str) -> float:
        """Mean per-request service time ``1/mu``; inf for inactive modes.

        Used by constraint (3): in the full-queue transfer state an
        active SP may not move to an active mode with longer service
        time.
        """
        mu = self.service_rate(mode)
        return np.inf if mu == 0.0 else 1.0 / mu

    def deepest_sleep_mode(self) -> str:
        """The inactive mode with the lowest power (heuristics' target).

        Falls back to the lowest-power mode overall if every mode is
        active.
        """
        candidates = self.inactive_modes or self._modes
        return min(candidates, key=self.power_rate)

    def fastest_active_mode(self) -> str:
        """The active mode with the highest service rate."""
        return max(self.active_modes, key=self.service_rate)

    def rescaled(self, exponent: int) -> "ServiceProvider":
        """A copy with every *rate* multiplied by ``2**exponent``.

        Rates (``chi``, ``mu``, ``self_switch_rate``) and power rates
        (energy per time) carry a 1/time unit and get the factor;
        switching energies are pure costs and stay put. The exact
        power-of-two factor makes this the time-unit rescaling used by
        the admission remediation ladder: a model built from the
        rescaled provider is the original model in different units, and
        (given the canonical solver normalization) solves to
        bit-identical policies, biases and distributions.
        """
        factor = float(np.ldexp(1.0, exponent))
        return ServiceProvider(
            self._modes,
            np.ldexp(self._chi, exponent),
            np.ldexp(self._mu, exponent),
            np.ldexp(self._power, exponent),
            self._ene,
            self_switch_rate=self._self_switch_rate * factor,
        )

    def generator_matrix(self, action: str) -> np.ndarray:
        """SP-only generator ``G_SP(a)`` under the constant action *a*.

        Section III: ``s_{si, sj}(a) = delta(sj, a) * chi[si, sj]`` --
        only the transition toward the action's destination is enabled.
        The self-switch row (``si == a``) is all zeros: the SP simply
        stays (the instantaneous self-switch never shows up as a rate).
        """
        j = self.index_of(action)
        s = self.n_modes
        g = np.zeros((s, s))
        for i in range(s):
            if i != j:
                g[i, j] = self._chi[i, j]
        np.fill_diagonal(g, -g.sum(axis=1))
        return g

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ServiceProvider(modes={self._modes!r})"
