"""Online arrival-rate estimation and adaptive policy re-solving.

Section III observes that "the average inter-arrival time of a given
Poisson process can be estimated within 5% error after observing 50
events", so a power manager can track a slowly-varying source and
re-derive its policy when the estimate drifts. This module provides:

- :class:`AdaptiveRateEstimator` -- a sliding-window maximum-likelihood
  estimator of the exponential rate (the reciprocal of the window's mean
  inter-arrival time);
- :class:`AdaptivePolicySolver` -- caches optimal policies per quantized
  rate and re-solves when the estimate leaves the current band.

The simulator-side policy that glues these to the event loop is
:class:`repro.policies.optimal.AdaptiveCTMDPPolicy`.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional

from repro.dpm.optimizer import OptimizationResult, optimize_weighted
from repro.dpm.system import PowerManagedSystemModel
from repro.errors import InvalidModelError

#: Window length from the paper's 5 %-after-50-events observation.
DEFAULT_WINDOW = 50


class AdaptiveRateEstimator:
    """Sliding-window MLE of a Poisson arrival rate.

    Feed arrival timestamps via :meth:`observe_arrival`; read the
    current estimate with :meth:`rate`. The estimate is the reciprocal
    of the mean of the last ``window`` inter-arrival times -- the MLE
    for an exponential sample.

    Parameters
    ----------
    window:
        Number of inter-arrival samples retained; the paper's
        observation motivates the default of 50.
    initial_rate:
        Returned before any complete inter-arrival has been seen.
    """

    def __init__(self, window: int = DEFAULT_WINDOW, initial_rate: float = 1.0) -> None:
        if window < 1:
            raise InvalidModelError(f"window must be >= 1, got {window}")
        if initial_rate <= 0:
            raise InvalidModelError(f"initial rate must be positive, got {initial_rate}")
        self._window = int(window)
        self._initial_rate = float(initial_rate)
        self._samples: Deque[float] = deque(maxlen=self._window)
        self._sum = 0.0
        self._last_arrival: Optional[float] = None

    def observe_arrival(self, timestamp: float) -> None:
        """Record one arrival at absolute time *timestamp* (non-decreasing)."""
        if self._last_arrival is not None:
            gap = timestamp - self._last_arrival
            if gap < 0:
                raise InvalidModelError(
                    f"arrival timestamps must be non-decreasing "
                    f"({timestamp} after {self._last_arrival})"
                )
            if len(self._samples) == self._window:
                self._sum -= self._samples[0]
            self._samples.append(gap)
            self._sum += gap
        self._last_arrival = timestamp

    @property
    def n_samples(self) -> int:
        return len(self._samples)

    @property
    def warmed_up(self) -> bool:
        """True once a full window of samples has been observed."""
        return len(self._samples) == self._window

    def rate(self) -> float:
        """Current rate estimate (``window / sum of gaps``)."""
        if not self._samples or self._sum <= 0:
            return self._initial_rate
        return len(self._samples) / self._sum

    def mean_interarrival(self) -> float:
        return 1.0 / self.rate()


class AdaptivePolicySolver:
    """Re-solves the SYS model as the estimated arrival rate drifts.

    Rates are quantized into geometric bands of relative width
    ``band_width`` so that small estimation noise does not trigger
    constant re-solving; solved policies are cached per band.

    Parameters
    ----------
    base_model:
        The SYS model at its nominal rate; re-solves clone it with the
        estimated rate.
    weight:
        Performance weight of the objective.
    band_width:
        Relative width of a rate band (e.g. 0.15 means the policy is
        reused while the estimate stays within +-15 % of the band
        center).
    solver:
        Passed through to :func:`repro.dpm.optimizer.optimize_weighted`.
    """

    def __init__(
        self,
        base_model: PowerManagedSystemModel,
        weight: float,
        band_width: float = 0.15,
        solver: str = "policy_iteration",
    ) -> None:
        if not 0 < band_width < 1:
            raise InvalidModelError(f"band_width must be in (0, 1), got {band_width}")
        self._base_model = base_model
        self._weight = float(weight)
        self._band_width = float(band_width)
        self._solver = solver
        self._cache: Dict[int, OptimizationResult] = {}
        self.n_solves = 0

    @property
    def base_model(self) -> PowerManagedSystemModel:
        return self._base_model

    @property
    def weight(self) -> float:
        return self._weight

    def _band_of(self, rate: float) -> int:
        import math

        return int(math.floor(math.log(rate) / math.log1p(self._band_width)))

    def _band_center(self, band: int) -> float:
        import math

        return math.exp((band + 0.5) * math.log1p(self._band_width))

    def policy_for_rate(self, rate: float) -> OptimizationResult:
        """The cached or freshly solved policy for an estimated *rate*."""
        if rate <= 0:
            raise InvalidModelError(f"rate must be positive, got {rate}")
        band = self._band_of(rate)
        if band not in self._cache:
            model = PowerManagedSystemModel(
                provider=self._base_model.provider,
                requestor=self._base_model.requestor.with_rate(self._band_center(band)),
                capacity=self._base_model.capacity,
                include_transfer_states=self._base_model.include_transfer_states,
            )
            self._cache[band] = optimize_weighted(
                model, self._weight, solver=self._solver
            )
            self.n_solves += 1
        return self._cache[band]
