"""Online arrival-rate estimation and adaptive policy re-solving.

Section III observes that "the average inter-arrival time of a given
Poisson process can be estimated within 5% error after observing 50
events", so a power manager can track a slowly-varying source and
re-derive its policy when the estimate drifts. This module provides:

- :class:`AdaptiveRateEstimator` -- a sliding-window maximum-likelihood
  estimator of the exponential rate (the reciprocal of the window's mean
  inter-arrival time);
- :class:`DriftDetector` -- hysteresis on top of the estimator: decides
  *when* the estimate has moved far enough from the rate a policy was
  solved for that a re-solve is warranted (the serving runtime's
  trigger);
- :class:`AdaptivePolicySolver` -- caches optimal policies per quantized
  rate and re-solves when the estimate leaves the current band.

The simulator-side policy that glues these to the event loop is
:class:`repro.policies.optimal.AdaptiveCTMDPPolicy`; the long-lived
serving runtime built on the detector is :mod:`repro.serve`.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional

from repro.ctmdp.policy import Policy
from repro.dpm.optimizer import OptimizationResult, optimize_weighted
from repro.dpm.system import PowerManagedSystemModel
from repro.errors import InvalidModelError
from repro.obs.runtime import active as obs_active

#: Window length from the paper's 5 %-after-50-events observation.
DEFAULT_WINDOW = 50


class AdaptiveRateEstimator:
    """Sliding-window MLE of a Poisson arrival rate.

    Feed arrival timestamps via :meth:`observe_arrival`; read the
    current estimate with :meth:`rate`. The estimate is the reciprocal
    of the mean of the last ``window`` inter-arrival times -- the MLE
    for an exponential sample.

    Parameters
    ----------
    window:
        Number of inter-arrival samples retained; the paper's
        observation motivates the default of 50.
    initial_rate:
        Returned before any complete inter-arrival has been seen.
    """

    def __init__(self, window: int = DEFAULT_WINDOW, initial_rate: float = 1.0) -> None:
        if window < 1:
            raise InvalidModelError(f"window must be >= 1, got {window}")
        if initial_rate <= 0:
            raise InvalidModelError(f"initial rate must be positive, got {initial_rate}")
        self._window = int(window)
        self._initial_rate = float(initial_rate)
        self._samples: Deque[float] = deque(maxlen=self._window)
        self._sum = 0.0
        self._last_arrival: Optional[float] = None

    def observe_arrival(self, timestamp: float) -> None:
        """Record one arrival at absolute time *timestamp* (non-decreasing)."""
        if self._last_arrival is not None:
            gap = timestamp - self._last_arrival
            if gap < 0:
                raise InvalidModelError(
                    f"arrival timestamps must be non-decreasing "
                    f"({timestamp} after {self._last_arrival})"
                )
            if len(self._samples) == self._window:
                self._sum -= self._samples[0]
            self._samples.append(gap)
            self._sum += gap
        self._last_arrival = timestamp

    @property
    def n_samples(self) -> int:
        return len(self._samples)

    @property
    def warmed_up(self) -> bool:
        """True once a full window of samples has been observed."""
        return len(self._samples) == self._window

    def rate(self) -> float:
        """Current rate estimate (``window / sum of gaps``)."""
        if not self._samples or self._sum <= 0:
            return self._initial_rate
        return len(self._samples) / self._sum

    def mean_interarrival(self) -> float:
        return 1.0 / self.rate()


class DriftDetector:
    """Decide when an estimated rate has drifted from a reference rate.

    Raw rate estimates are noisy -- the paper's own 5 %-after-50-events
    bound means a fresh window wobbles -- so a single excursion past the
    threshold must not trigger a (costly) re-solve. The detector
    requires ``consecutive`` successive observations beyond the relative
    ``threshold`` before reporting drift, and :meth:`rebase` resets the
    reference after a successful re-solve so the same drift is not
    reported twice.

    Parameters
    ----------
    reference_rate:
        The rate the currently served policy was solved for.
    threshold:
        Relative deviation ``|est - ref| / ref`` that counts as drifted
        (default 0.25 -- comfortably past the estimator's 5 % noise).
    consecutive:
        Number of successive beyond-threshold observations required
        before :meth:`observe` reports drift (hysteresis against
        single-window noise).
    """

    def __init__(
        self,
        reference_rate: float,
        threshold: float = 0.25,
        consecutive: int = 3,
    ) -> None:
        if reference_rate <= 0:
            raise InvalidModelError(
                f"reference rate must be positive, got {reference_rate}"
            )
        if threshold <= 0:
            raise InvalidModelError(
                f"drift threshold must be positive, got {threshold}"
            )
        if consecutive < 1:
            raise InvalidModelError(
                f"consecutive must be >= 1, got {consecutive}"
            )
        self._reference = float(reference_rate)
        self._threshold = float(threshold)
        self._consecutive = int(consecutive)
        self._streak = 0
        self._last_fraction = 0.0

    @property
    def reference_rate(self) -> float:
        return self._reference

    @property
    def threshold(self) -> float:
        return self._threshold

    @property
    def drift_fraction(self) -> float:
        """Relative deviation of the most recent observation."""
        return self._last_fraction

    def observe(self, estimated_rate: float) -> bool:
        """Feed one rate estimate; True when drift is confirmed.

        Drift is confirmed on the ``consecutive``-th successive estimate
        beyond the threshold and keeps being reported until
        :meth:`rebase` -- the caller (supervisor) owns the decision of
        when the underlying policy has actually been replaced.
        """
        if estimated_rate <= 0:
            raise InvalidModelError(
                f"estimated rate must be positive, got {estimated_rate}"
            )
        self._last_fraction = abs(estimated_rate - self._reference) / self._reference
        if self._last_fraction > self._threshold:
            self._streak += 1
        else:
            self._streak = 0
        drifted = self._streak >= self._consecutive
        if drifted:
            ins = obs_active()
            if ins.metrics is not None:
                ins.metrics.counter("serve.drift.detected").inc()
        return drifted

    def rebase(self, reference_rate: float) -> None:
        """Reset the reference after the served policy was re-solved."""
        if reference_rate <= 0:
            raise InvalidModelError(
                f"reference rate must be positive, got {reference_rate}"
            )
        self._reference = float(reference_rate)
        self._streak = 0
        self._last_fraction = 0.0


def rated_model(
    base_model: PowerManagedSystemModel, rate: float
) -> PowerManagedSystemModel:
    """A clone of *base_model* with the arrival rate replaced.

    The single re-rating primitive shared by the banded adaptive solver
    and the serving supervisor: provider, capacity, and transfer-state
    choice are preserved, only the requestor changes.
    """
    if rate <= 0:
        raise InvalidModelError(f"rate must be positive, got {rate}")
    return PowerManagedSystemModel(
        provider=base_model.provider,
        requestor=base_model.requestor.with_rate(rate),
        capacity=base_model.capacity,
        include_transfer_states=base_model.include_transfer_states,
    )


def solve_rated(
    base_model: PowerManagedSystemModel,
    rate: float,
    weight: float,
    solver: str = "policy_iteration",
    backend: str = "auto",
    initial_policy: "Optional[Policy]" = None,
) -> OptimizationResult:
    """Solve *base_model* re-rated to *rate*, optionally warm-started.

    The seed is advisory exactly as in
    :func:`repro.dpm.optimizer.optimize_weighted`: a converged policy
    from a neighboring rate usually starts at or near its own fixed
    point (re-rating preserves the state/action space), and a harmful
    seed falls back to a cold start without changing the result.
    """
    return optimize_weighted(
        rated_model(base_model, rate),
        weight,
        solver=solver,
        backend=backend,
        initial_policy=initial_policy,
    )


class AdaptivePolicySolver:
    """Re-solves the SYS model as the estimated arrival rate drifts.

    Rates are quantized into geometric bands of relative width
    ``band_width`` so that small estimation noise does not trigger
    constant re-solving; solved policies are cached per band.

    Parameters
    ----------
    base_model:
        The SYS model at its nominal rate; re-solves clone it with the
        estimated rate.
    weight:
        Performance weight of the objective.
    band_width:
        Relative width of a rate band (e.g. 0.15 means the policy is
        reused while the estimate stays within +-15 % of the band
        center).
    solver:
        Passed through to :func:`repro.dpm.optimizer.optimize_weighted`.
    backend:
        Solver backend forwarded to the optimizer (``"auto"`` default).
    warm_start:
        Seed each band's solve with the most recently solved band's
        converged policy (neighboring rates share most of their optimal
        assignment). Seeds are advisory; results are unchanged.
    """

    def __init__(
        self,
        base_model: PowerManagedSystemModel,
        weight: float,
        band_width: float = 0.15,
        solver: str = "policy_iteration",
        backend: str = "auto",
        warm_start: bool = True,
    ) -> None:
        if not 0 < band_width < 1:
            raise InvalidModelError(f"band_width must be in (0, 1), got {band_width}")
        self._base_model = base_model
        self._weight = float(weight)
        self._band_width = float(band_width)
        self._solver = solver
        self._backend = backend
        self._warm_start = bool(warm_start)
        self._last_policy: "Optional[Policy]" = None
        self._cache: Dict[int, OptimizationResult] = {}
        self.n_solves = 0

    @property
    def base_model(self) -> PowerManagedSystemModel:
        return self._base_model

    @property
    def weight(self) -> float:
        return self._weight

    def _band_of(self, rate: float) -> int:
        import math

        return int(math.floor(math.log(rate) / math.log1p(self._band_width)))

    def _band_center(self, band: int) -> float:
        import math

        return math.exp((band + 0.5) * math.log1p(self._band_width))

    def policy_for_rate(self, rate: float) -> OptimizationResult:
        """The cached or freshly solved policy for an estimated *rate*."""
        if rate <= 0:
            raise InvalidModelError(f"rate must be positive, got {rate}")
        band = self._band_of(rate)
        if band not in self._cache:
            seed = (
                self._last_policy
                if self._warm_start and self._solver == "policy_iteration"
                else None
            )
            result = solve_rated(
                self._base_model,
                self._band_center(band),
                self._weight,
                solver=self._solver,
                backend=self._backend,
                initial_policy=seed,
            )
            if isinstance(result.policy, Policy):
                self._last_policy = result.policy
            self._cache[band] = result
            self.n_solves += 1
        return self._cache[band]
