"""Dynamic power management system model (the paper's core contribution).

The power-managed system of Section III is assembled from:

- :mod:`repro.dpm.service_provider` -- the SP: a multi-mode server with
  switching-speed matrix, per-mode service rates, power rates, and
  switching energies (the quadruple of Section III).
- :mod:`repro.dpm.service_requestor` -- the SR: a Poisson request source
  with rate ``lambda``.
- :mod:`repro.dpm.service_queue` -- the SQ state space: stable states
  ``q_0 .. q_Q`` plus the paper's novel *transfer states*
  ``q_{i -> i-1}`` that synchronize queue and server transitions.
- :mod:`repro.dpm.system` -- the joint SYS CTMDP with the paper's
  action-validity constraints (Section III, constraints 1-3).
- :mod:`repro.dpm.cost` -- power and delay cost rates (Eqn. 3.1).
- :mod:`repro.dpm.analysis` -- exact steady-state metrics of a policy
  (average power, queue length, waiting time, loss rate).
- :mod:`repro.dpm.optimizer` -- the policy-optimization workflow of
  Figure 3: weighted-cost sweeps and constrained optimization.
- :mod:`repro.dpm.adaptive` -- online arrival-rate estimation and
  adaptive policy switching (Section III's adaptivity remark).
- :mod:`repro.dpm.presets` -- the paper's experimental setup (Eqn. 4.1)
  and extra device presets used by the examples.
"""

from repro.dpm.adaptive import AdaptiveRateEstimator
from repro.dpm.analysis import AnalyticMetrics, evaluate_dpm_policy, wakeup_latency
from repro.dpm.describe import (
    describe_service_provider,
    describe_service_queue,
    describe_system,
)
from repro.dpm.optimizer import (
    OptimizationResult,
    find_weight_for_constraint,
    optimize_constrained,
    optimize_weighted,
    sweep_weights,
)
from repro.dpm.pareto import (
    FrontierPoint,
    deterministic_frontier,
    randomized_frontier,
)
from repro.dpm.presets import (
    disk_drive_provider,
    paper_service_provider,
    paper_system,
    wireless_nic_provider,
)
from repro.dpm.service_provider import ServiceProvider
from repro.dpm.service_queue import QueueState, queue_states
from repro.dpm.service_requestor import ServiceRequestor
from repro.dpm.system import PowerManagedSystemModel, SystemState
from repro.dpm.verification import VerificationReport, verify_model

__all__ = [
    "AdaptiveRateEstimator",
    "AnalyticMetrics",
    "FrontierPoint",
    "OptimizationResult",
    "PowerManagedSystemModel",
    "QueueState",
    "ServiceProvider",
    "ServiceRequestor",
    "SystemState",
    "VerificationReport",
    "describe_service_provider",
    "describe_service_queue",
    "describe_system",
    "deterministic_frontier",
    "disk_drive_provider",
    "evaluate_dpm_policy",
    "find_weight_for_constraint",
    "optimize_constrained",
    "optimize_weighted",
    "paper_service_provider",
    "paper_system",
    "queue_states",
    "randomized_frontier",
    "sweep_weights",
    "verify_model",
    "wakeup_latency",
    "wireless_nic_provider",
]
