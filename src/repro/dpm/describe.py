"""Textual rendering of the model's Markov-process structure.

The paper illustrates its models with transition diagrams: Figure 1
(the SP under a chosen policy, Example 4.1) and Figure 2 (the SQ with
transfer states when the PM issues *sleep* at every transfer, Example
4.3). These helpers produce the same pictures as adjacency listings --
every edge with its rate -- for debugging, teaching, and the structure
tests that pin the examples down.

Self-loops are omitted, as in the paper's figures.
"""

from __future__ import annotations

from typing import Dict, List, Mapping

from repro.dpm.service_provider import ServiceProvider
from repro.dpm.system import PowerManagedSystemModel, SystemState
from repro.errors import InvalidPolicyError


def describe_service_provider(
    provider: ServiceProvider,
    chosen_actions: Mapping[str, str],
) -> "List[str]":
    """Figure-1 edges: the SP process under one action per mode.

    Parameters
    ----------
    provider:
        The SP description.
    chosen_actions:
        ``{mode: commanded destination}`` (Example 4.1 uses
        ``{"active": "waiting", "waiting": "sleeping",
        "sleeping": "active"}``).

    Returns
    -------
    Lines ``"src -> dst  rate=..."``, source-major order, self-loops
    omitted (a mode whose command targets itself contributes no edge).
    """
    lines: List[str] = []
    for mode in provider.modes:
        try:
            target = chosen_actions[mode]
        except KeyError:
            raise InvalidPolicyError(f"no action chosen for mode {mode!r}") from None
        provider.index_of(target)
        if target == mode:
            continue
        rate = provider.switching_rate(mode, target)
        lines.append(f"{mode} -> {target}  rate={rate:g}")
    return lines


def describe_service_queue(
    model: PowerManagedSystemModel,
    sp_mode: str,
    transfer_action: str,
) -> "List[str]":
    """Figure-2 edges: the SQ process for a fixed SP mode and a fixed
    transfer-state command.

    Example 4.3 fixes the SP in its active mode and lets the PM issue
    *sleep* whenever the SQ is in a transfer state; the resulting edges
    are the four Section-III transition types.
    """
    provider = model.provider
    provider.index_of(sp_mode)
    provider.index_of(transfer_action)
    lines: List[str] = []
    for state in model.states:
        if state.mode != sp_mode:
            continue
        action = (
            transfer_action
            if state.queue.is_transfer
            else sp_mode  # stable states: hold the mode (queue view only)
        )
        if not model.is_valid_action(state, action):
            continue
        for dest, rate in sorted(
            model.transition_rates(state, action).items(), key=lambda kv: repr(kv[0])
        ):
            if dest.mode == state.mode or state.queue.is_transfer:
                lines.append(
                    f"{state.queue!r} -> {dest.queue!r}  rate={rate:g}"
                    + ("" if dest.mode == state.mode else f"  (SP -> {dest.mode})")
                )
    return lines


def describe_system(
    model: PowerManagedSystemModel,
    assignment: Mapping[SystemState, str],
) -> "List[str]":
    """Every joint-state edge under a full policy assignment."""
    lines: List[str] = []
    for state in model.states:
        action = assignment.get(state)
        if action is None:
            raise InvalidPolicyError(f"assignment misses state {state!r}")
        for dest, rate in sorted(
            model.transition_rates(state, action).items(), key=lambda kv: repr(kv[0])
        ):
            lines.append(f"{state!r} -> {dest!r}  rate={rate:g}")
    return lines


def transition_counts(
    model: PowerManagedSystemModel,
    assignment: Mapping[SystemState, str],
) -> "Dict[str, int]":
    """Edge counts by Section-III transition type, for structure checks.

    Keys: ``"arrival"`` (type 1 and 4), ``"service"`` (type 2),
    ``"transfer_resolution"`` (type 3), ``"sp_switch"`` (stable-state
    mode switches).
    """
    counts = {"arrival": 0, "service": 0, "transfer_resolution": 0, "sp_switch": 0}
    for state in model.states:
        action = assignment[state]
        for dest in model.transition_rates(state, action):
            if state.queue.is_stable and dest.queue.is_stable:
                if dest.mode != state.mode:
                    counts["sp_switch"] += 1
                else:
                    counts["arrival"] += 1
            elif state.queue.is_stable and dest.queue.is_transfer:
                counts["service"] += 1
            elif state.queue.is_transfer and dest.queue.is_stable:
                counts["transfer_resolution"] += 1
            else:
                counts["arrival"] += 1
    return counts
