"""Heuristic policies expressed on the joint SYS model.

The heuristics of Section V (N-policy, greedy, always-on) are stationary
Markov policies, so they can be written down directly on the joint CTMDP
and evaluated *analytically* with
:func:`repro.dpm.analysis.evaluate_dpm_policy` -- no simulation needed.
(Timeout policies are *not* stationary Markov policies -- they depend on
elapsed idle time -- so they only exist on the simulator side, in
:mod:`repro.policies.timeout`.)

Each builder returns a plain ``{SystemState: mode}`` assignment; wrap it
in a :class:`repro.ctmdp.policy.Policy` against any CTMDP built from the
same model.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.ctmdp.model import CTMDP
from repro.ctmdp.policy import Policy
from repro.dpm.system import PowerManagedSystemModel, SystemState
from repro.errors import InvalidPolicyError


def default_valid_action(model: PowerManagedSystemModel, state: SystemState) -> str:
    """Prefer staying put; fall back to the fastest active mode.

    The fastest active mode is a valid destination in every state:
    constraint (1) only forbids active-to-inactive moves, constraint (2)
    allows any active destination, and constraint (3) only forbids
    *slower* active modes.
    """
    if model.is_valid_action(state, state.mode):
        return state.mode
    return model.provider.fastest_active_mode()


def _complete(
    model: PowerManagedSystemModel,
    partial: "Dict[SystemState, str]",
) -> "Dict[SystemState, str]":
    """Fill unassigned states with :func:`default_valid_action` and
    verify every assigned action is valid."""
    assignment: Dict[SystemState, str] = {}
    for state in model.states:
        action = partial.get(state)
        if action is None:
            action = default_valid_action(model, state)
        elif not model.is_valid_action(state, action):
            raise InvalidPolicyError(
                f"heuristic assigns invalid action {action!r} to {state!r}"
            )
        assignment[state] = action
    return assignment


def n_policy_assignment(
    model: PowerManagedSystemModel,
    n: int,
    sleep_mode: Optional[str] = None,
    active_mode: Optional[str] = None,
) -> "Dict[SystemState, str]":
    """The N-policy of Section V on the joint model.

    Activate the server when ``n`` requests are waiting; deactivate it
    (into *sleep_mode*) as soon as the system is empty -- i.e. in the
    transfer state ``q_{1 -> 0}``. While powered down below the
    threshold, stay put.

    Parameters
    ----------
    model:
        The SYS model; ``n`` must be within ``1 .. capacity`` (at a full
        queue the model's constraints force a wakeup anyway).
    n:
        Activation threshold.
    sleep_mode:
        Power-down target; defaults to the provider's lowest-power
        inactive mode.
    active_mode:
        Wakeup target; defaults to the fastest active mode.
    """
    if not 1 <= n <= model.capacity:
        raise InvalidPolicyError(
            f"N must be in 1..{model.capacity} for capacity {model.capacity}, got {n}"
        )
    sp = model.provider
    sleep = sleep_mode if sleep_mode is not None else sp.deepest_sleep_mode()
    active = active_mode if active_mode is not None else sp.fastest_active_mode()
    if sp.is_active(sleep):
        raise InvalidPolicyError(f"sleep mode {sleep!r} is active")
    if not sp.is_active(active):
        raise InvalidPolicyError(f"active mode {active!r} is inactive")
    partial: Dict[SystemState, str] = {}
    for state in model.states:
        q = state.queue
        if q.is_transfer:
            if sp.is_active(state.mode):
                # Power down when the system just emptied, keep serving
                # otherwise.
                partial[state] = sleep if q.waiting_count == 0 else state.mode
        elif not sp.is_active(state.mode):
            # Powered down: wake at the threshold (or when forced by the
            # full-queue constraint), otherwise stay.
            if q.index >= n:
                partial[state] = active
            elif model.is_valid_action(state, state.mode):
                partial[state] = state.mode
        # Active mode in a stable state: keep serving (default handles it).
    return _complete(model, partial)


def greedy_assignment(
    model: PowerManagedSystemModel,
    sleep_mode: Optional[str] = None,
    active_mode: Optional[str] = None,
) -> "Dict[SystemState, str]":
    """Section V's greedy heuristic: sleep the instant the queue empties,
    wake the instant it is non-empty -- the N-policy with ``N = 1``."""
    return n_policy_assignment(model, 1, sleep_mode, active_mode)


def always_on_assignment(model: PowerManagedSystemModel) -> "Dict[SystemState, str]":
    """Never power down: every state targets the fastest active mode."""
    active = model.provider.fastest_active_mode()
    return _complete(model, {state: active for state in model.states})


def as_policy(mdp: CTMDP, assignment: "Dict[SystemState, str]") -> Policy:
    """Wrap an assignment as a :class:`Policy` on *mdp*."""
    return Policy(mdp, assignment)
