"""Named, independently seeded random streams.

Comparing power-management policies is far sharper when every policy
sees the *same arrival realization* (common random numbers). Splitting
the master seed into named substreams -- one for arrivals, one for
service times, one for switching latencies -- guarantees that changing
how often one stream is consumed (e.g. a policy that switches modes more
often) cannot perturb the others.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np


class RandomStreams:
    """A factory of named, reproducible :class:`numpy.random.Generator` s.

    Streams are derived deterministically from ``(seed, name)`` via
    ``SeedSequence``; asking for the same name twice returns the same
    generator object.
    """

    def __init__(self, seed: Optional[int] = None) -> None:
        self._seed_sequence = np.random.SeedSequence(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def entropy(self) -> int:
        """The master seed entropy (for logging/reproduction)."""
        return int(self._seed_sequence.entropy)

    def stream(self, name: str) -> np.random.Generator:
        """The generator dedicated to *name*, created on first use."""
        if name not in self._streams:
            # Hash the name into a stable spawn key so stream identity
            # depends only on (seed, name), not on request order.
            key = [b for b in name.encode("utf-8")]
            child = np.random.SeedSequence(
                entropy=self._seed_sequence.entropy, spawn_key=tuple(key)
            )
            self._streams[name] = np.random.default_rng(child)
        return self._streams[name]

    def exponential(self, name: str, mean: float) -> float:
        """One exponential draw with the given *mean* from stream *name*."""
        if mean <= 0:
            raise ValueError(f"exponential mean must be positive, got {mean}")
        return float(self.stream(name).exponential(mean))
