"""Replicated simulation runs with confidence intervals.

Single runs of a stochastic simulation carry sampling noise; standard
DES methodology runs independent replications (different seeds) and
reports mean and confidence half-width per metric. Used by the examples
and available to users comparing policies rigorously:

- :func:`run_replications` -- N independent runs of a policy factory;
- :class:`MetricSummary` / :func:`summarize` -- mean, standard error
  and a t-based confidence interval per metric.

Policies are constructed fresh per replication (a *factory* is passed,
not an instance) so stateful policies (timeout timers, adaptive
estimators) cannot leak state across runs.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np
from scipy import stats as scipy_stats

from repro.dpm.service_provider import ServiceProvider
from repro.errors import SimulationError
from repro.policies.base import PowerManagementPolicy
from repro.sim.parallel import parallel_map
from repro.sim.simulator import SimulationResult, simulate
from repro.sim.workload import ArrivalProcess

#: The metrics summarized by default.
DEFAULT_METRICS = (
    "average_power",
    "average_queue_length",
    "average_waiting_time",
    "loss_probability",
)


@dataclass(frozen=True)
class MetricSummary:
    """Replication statistics of one scalar metric."""

    name: str
    mean: float
    std_error: float
    half_width: float
    n_replications: int

    @property
    def interval(self) -> "tuple[float, float]":
        return (self.mean - self.half_width, self.mean + self.half_width)

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        return f"{self.name} = {self.mean:.4f} +- {self.half_width:.4f}"


def run_replications(
    provider: ServiceProvider,
    capacity: int,
    workload_factory: Callable[[], ArrivalProcess],
    policy_factory: Callable[[], PowerManagementPolicy],
    n_requests: int,
    n_replications: int,
    base_seed: int = 0,
    n_jobs: Optional[int] = None,
    checkpoint=None,
    **simulate_kwargs,
) -> "List[SimulationResult]":
    """Run *n_replications* independent simulations (seeds differ).

    ``n_jobs`` fans the replications out over a process pool
    (:func:`repro.sim.parallel.parallel_map`); every replication is
    fully determined by its seed ``base_seed + k``, so the results are
    identical to a serial run for any ``n_jobs``. Factories are invoked
    inside the worker, keeping per-replication policy state isolated.

    An optional :class:`repro.robust.checkpoint.Checkpoint` persists
    each completed replication keyed by its seed; resuming a killed
    campaign reruns only the missing seeds and -- because every
    replication is a pure function of its seed -- returns the same list
    as an uninterrupted run.
    """
    if n_replications < 1:
        raise SimulationError(
            f"n_replications must be >= 1, got {n_replications}"
        )

    def _replicate(seed: int) -> SimulationResult:
        return simulate(
            provider=provider,
            capacity=capacity,
            workload=workload_factory(),
            policy=policy_factory(),
            n_requests=n_requests,
            seed=seed,
            **simulate_kwargs,
        )

    seeds = [base_seed + k for k in range(n_replications)]
    if checkpoint is None:
        return parallel_map(_replicate, seeds, n_jobs=n_jobs)
    missing = [s for s in seeds if str(s) not in checkpoint]
    fresh = parallel_map(_replicate, missing, n_jobs=n_jobs)
    for seed, result in zip(missing, fresh):
        checkpoint.put(str(seed), dataclasses.asdict(result))
    checkpoint.flush()
    return [SimulationResult(**checkpoint.get(str(s))) for s in seeds]


def summarize(
    results: Sequence[SimulationResult],
    metrics: Sequence[str] = DEFAULT_METRICS,
    confidence: float = 0.95,
) -> "Dict[str, MetricSummary]":
    """Mean and t-interval of each metric across replications."""
    if not results:
        raise SimulationError("no results to summarize")
    if not 0 < confidence < 1:
        raise SimulationError(f"confidence must be in (0, 1), got {confidence}")
    n = len(results)
    summaries: Dict[str, MetricSummary] = {}
    for name in metrics:
        values = np.array([float(getattr(r, name)) for r in results])
        mean = float(values.mean())
        if n > 1:
            std_error = float(values.std(ddof=1) / np.sqrt(n))
            t_crit = float(scipy_stats.t.ppf(0.5 * (1 + confidence), df=n - 1))
            half_width = t_crit * std_error
        else:
            std_error = float("nan")
            half_width = float("nan")
        summaries[name] = MetricSummary(
            name=name,
            mean=mean,
            std_error=std_error,
            half_width=half_width,
            n_replications=n,
        )
    return summaries


def compare_policies(
    provider: ServiceProvider,
    capacity: int,
    workload_factory: Callable[[], ArrivalProcess],
    policy_factories: "Dict[str, Callable[[], PowerManagementPolicy]]",
    n_requests: int,
    n_replications: int,
    base_seed: int = 0,
    metrics: Sequence[str] = DEFAULT_METRICS,
    n_jobs: Optional[int] = None,
    **simulate_kwargs,
) -> "Dict[str, Dict[str, MetricSummary]]":
    """Replicated comparison of several policies on common seeds.

    Every policy sees the same seed sequence (common random numbers), so
    cross-policy differences are sharper than the marginal intervals
    suggest. ``n_jobs`` parallelizes the replications of each policy;
    summaries are identical to a serial run for any value.
    """
    return {
        name: summarize(
            run_replications(
                provider,
                capacity,
                workload_factory,
                factory,
                n_requests,
                n_replications,
                base_seed=base_seed,
                n_jobs=n_jobs,
                **simulate_kwargs,
            ),
            metrics=metrics,
        )
        for name, factory in policy_factories.items()
    }
