"""Discrete-event simulation core.

A minimal, dependency-free event calendar: events are ``(time, kind,
payload)`` triples ordered by time with FIFO tie-breaking (a
monotonically increasing sequence number). Cancellation is by handle
invalidation -- cancelled entries stay in the heap and are skipped on
pop, the standard lazy-deletion technique.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.errors import SimulationError


@dataclass
class EventHandle:
    """A scheduled event; :meth:`cancel` prevents it from firing."""

    time: float
    kind: str
    payload: Any = None
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        self.cancelled = True


class EventScheduler:
    """Time-ordered event calendar with lazy cancellation."""

    def __init__(self) -> None:
        self._heap: "List[Tuple[float, int, EventHandle]]" = []
        self._counter = itertools.count()
        self._now = 0.0

    @property
    def now(self) -> float:
        """Current simulation time (time of the last popped event)."""
        return self._now

    def schedule_at(self, time: float, kind: str, payload: Any = None) -> EventHandle:
        """Schedule an event at absolute *time* (must not be in the past)."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule {kind!r} at {time:g} before current time {self._now:g}"
            )
        handle = EventHandle(time=time, kind=kind, payload=payload)
        heapq.heappush(self._heap, (time, next(self._counter), handle))
        return handle

    def schedule_after(self, delay: float, kind: str, payload: Any = None) -> EventHandle:
        """Schedule an event *delay* seconds from now."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay:g}")
        return self.schedule_at(self._now + delay, kind, payload)

    def pop(self) -> Optional[EventHandle]:
        """Advance to and return the next live event; ``None`` when empty."""
        while self._heap:
            time, _, handle = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            self._now = time
            return handle
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the next live event without advancing; ``None`` if empty."""
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for _, _, h in self._heap if not h.cancelled)
