"""Trace and result persistence (CSV / JSON) with content checksums.

A small, dependency-free I/O layer so workloads and measurements are
portable:

- arrival traces: one timestamp per line (CSV with a ``time`` header),
  round-tripping :class:`~repro.sim.workload.TraceArrivals`;
- simulation results: JSON round-trip of
  :class:`~repro.sim.simulator.SimulationResult` (all scalar fields and
  the mode-residency map), so experiment sweeps can be archived and
  diffed across code versions.

Every file written here carries a SHA-256 content checksum -- a
``# sha256=... count=...`` footer comment on traces, a ``checksum``
key on result JSON -- and loading verifies it, so truncation, torn
writes, and hand edits surface as
:class:`~repro.errors.TraceIntegrityError` naming the offending path
(and line, for traces) instead of silently skewed statistics or a raw
``ValueError``/``KeyError`` escaping to the CLI. Files written by
older versions carry no checksum and still load; they simply get no
integrity guarantee.
"""

from __future__ import annotations

import csv
import dataclasses
import hashlib
import json
from pathlib import Path
from typing import List, Optional, Union

from repro.errors import SimulationError, TraceIntegrityError
from repro.sim.simulator import SimulationResult
from repro.sim.workload import TraceArrivals

PathLike = Union[str, Path]


def _trace_digest(cells: "List[str]") -> str:
    """Digest over the raw cell strings, one per line, order-sensitive."""
    return hashlib.sha256("\n".join(cells).encode("utf-8")).hexdigest()


def save_trace(trace: TraceArrivals, path: PathLike) -> None:
    """Write an arrival trace as a one-column CSV with a header.

    Appends a ``# sha256=<digest> count=<n>`` footer so
    :func:`load_trace` can detect truncated or corrupted files.
    """
    cells = [repr(t) for t in trace.times]
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["time"])
        for cell in cells:
            writer.writerow([cell])
        handle.write(f"# sha256={_trace_digest(cells)} count={len(cells)}\n")


def _parse_footer(path: PathLike, text: str) -> "Optional[tuple]":
    """``(digest, count)`` from a footer comment, ``None`` if absent."""
    fields = dict(
        part.split("=", 1) for part in text[1:].split() if "=" in part
    )
    if "sha256" not in fields:
        return None
    try:
        return fields["sha256"], int(fields["count"])
    except (KeyError, ValueError) as exc:
        raise TraceIntegrityError(
            f"{path}: malformed checksum footer {text!r}"
        ) from exc


def load_trace(path: PathLike) -> TraceArrivals:
    """Read a trace written by :func:`save_trace` (or any one-column
    CSV of non-decreasing times under a ``time`` header).

    Verifies the checksum footer when present; unparseable cells and
    checksum mismatches raise :class:`~repro.errors.TraceIntegrityError`
    with the path and line number. Unreadable files surface as
    :class:`~repro.errors.SimulationError`.
    """
    times: "List[float]" = []
    cells: "List[str]" = []
    footer = None
    try:
        with open(path, newline="") as handle:
            reader = csv.reader(handle)
            header = next(reader, None)
            if header is None or header[0].strip().lower() != "time":
                raise SimulationError(
                    f"{path}: expected a 'time' header, got {header!r}"
                )
            for row in reader:
                if not row or not row[0].strip():
                    continue
                cell = row[0].strip()
                if cell.startswith("#"):
                    footer = _parse_footer(path, ",".join(row).strip())
                    continue
                try:
                    times.append(float(row[0]))
                except ValueError as exc:
                    raise TraceIntegrityError(
                        f"{path}:{reader.line_num}: unparseable time "
                        f"{row[0]!r}"
                    ) from exc
                cells.append(row[0])
    except OSError as exc:
        raise SimulationError(f"{path}: cannot read trace: {exc}") from exc
    if footer is not None:
        digest, count = footer
        if count != len(cells):
            raise TraceIntegrityError(
                f"{path}: trace is truncated or padded: footer promises "
                f"{count} rows, found {len(cells)}"
            )
        if digest != _trace_digest(cells):
            raise TraceIntegrityError(
                f"{path}: trace checksum mismatch -- the file was "
                "modified after it was written"
            )
    return TraceArrivals(times)


def _result_checksum(payload: dict) -> str:
    body = {k: v for k, v in payload.items() if k != "checksum"}
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def save_result(result: SimulationResult, path: PathLike) -> None:
    """Write a :class:`SimulationResult` as pretty-printed JSON with a
    content ``checksum`` key."""
    payload = dataclasses.asdict(result)
    payload["checksum"] = _result_checksum(payload)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_result(path: PathLike) -> SimulationResult:
    """Read a result written by :func:`save_result`.

    Field-validates first (so a schema drift reads as ``unknown`` /
    ``missing`` fields, not a checksum failure), then verifies the
    content checksum when one is present. Unparseable JSON and
    checksum mismatches raise
    :class:`~repro.errors.TraceIntegrityError` with the path.
    """
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise SimulationError(f"{path}: cannot read result: {exc}") from exc
    except ValueError as exc:
        raise TraceIntegrityError(
            f"{path}: result file is not valid JSON "
            f"(truncated or corrupt): {exc}"
        ) from exc
    if not isinstance(payload, dict):
        raise TraceIntegrityError(
            f"{path}: result file holds {type(payload).__name__}, "
            "not an object"
        )
    stored = payload.pop("checksum", None)
    field_names = {f.name for f in dataclasses.fields(SimulationResult)}
    unknown = set(payload) - field_names
    if unknown:
        raise SimulationError(f"{path}: unknown result fields {sorted(unknown)}")
    missing = field_names - set(payload)
    if missing:
        raise SimulationError(f"{path}: missing result fields {sorted(missing)}")
    if stored is not None and stored != _result_checksum(payload):
        raise TraceIntegrityError(
            f"{path}: result checksum mismatch -- the file was modified "
            "after it was written"
        )
    return SimulationResult(**payload)
