"""Trace and result persistence (CSV / JSON).

A small, dependency-free I/O layer so workloads and measurements are
portable:

- arrival traces: one timestamp per line (CSV with a ``time`` header),
  round-tripping :class:`~repro.sim.workload.TraceArrivals`;
- simulation results: JSON round-trip of
  :class:`~repro.sim.simulator.SimulationResult` (all scalar fields and
  the mode-residency map), so experiment sweeps can be archived and
  diffed across code versions.
"""

from __future__ import annotations

import csv
import dataclasses
import json
from pathlib import Path
from typing import List, Union

from repro.errors import SimulationError
from repro.sim.simulator import SimulationResult
from repro.sim.workload import TraceArrivals

PathLike = Union[str, Path]


def save_trace(trace: TraceArrivals, path: PathLike) -> None:
    """Write an arrival trace as a one-column CSV with a header."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["time"])
        for t in trace.times:
            writer.writerow([repr(t)])


def load_trace(path: PathLike) -> TraceArrivals:
    """Read a trace written by :func:`save_trace` (or any one-column
    CSV of non-decreasing times under a ``time`` header)."""
    times: List[float] = []
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None or header[0].strip().lower() != "time":
            raise SimulationError(
                f"{path}: expected a 'time' header, got {header!r}"
            )
        for row in reader:
            if not row or not row[0].strip():
                continue
            times.append(float(row[0]))
    return TraceArrivals(times)


def save_result(result: SimulationResult, path: PathLike) -> None:
    """Write a :class:`SimulationResult` as pretty-printed JSON."""
    payload = dataclasses.asdict(result)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_result(path: PathLike) -> SimulationResult:
    """Read a result written by :func:`save_result`."""
    with open(path) as handle:
        payload = json.load(handle)
    field_names = {f.name for f in dataclasses.fields(SimulationResult)}
    unknown = set(payload) - field_names
    if unknown:
        raise SimulationError(f"{path}: unknown result fields {sorted(unknown)}")
    missing = field_names - set(payload)
    if missing:
        raise SimulationError(f"{path}: missing result fields {sorted(missing)}")
    return SimulationResult(**payload)
