"""Time-weighted simulation statistics.

Tracks exactly the quantities of Section V:

- *average power* -- the time integral of instantaneous mode power plus
  all switching energies, divided by elapsed time;
- *average queue length* -- the time integral of the occupancy
  (in-service request included, matching ``C_sq``);
- *average waiting time* -- mean sojourn (arrival to departure) of
  completed requests, the quantity Table 1 relates to the queue length
  via Little's law;
- losses, PM invocations/commands, mode residency.

The collector is driven by explicit "the value changed at time t" calls;
between calls values are constant, so the integrals are exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import SimulationError


class StatsCollector:
    """Accumulates time-weighted and per-request statistics."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._start = start_time
        self._last_time = start_time
        self._power_now = 0.0
        self._queue_now = 0
        self._mode_now = ""
        self.energy = 0.0
        self.queue_time_integral = 0.0
        self.mode_residency: Dict[str, float] = {}
        self.waiting_times: List[float] = []
        self.n_completed = 0
        self.n_pm_invocations = 0
        self.n_pm_commands = 0
        self.n_switches = 0
        self._finalized_at: float = start_time

    def _advance(self, time: float) -> None:
        if time < self._last_time - 1e-12:
            raise SimulationError(
                f"stats time went backwards: {time:g} < {self._last_time:g}"
            )
        dt = max(0.0, time - self._last_time)
        if dt > 0:
            self.energy += self._power_now * dt
            self.queue_time_integral += self._queue_now * dt
            if self._mode_now:
                self.mode_residency[self._mode_now] = (
                    self.mode_residency.get(self._mode_now, 0.0) + dt
                )
        self._last_time = time

    def set_power(self, time: float, watts: float) -> None:
        self._advance(time)
        self._power_now = watts

    def set_queue_length(self, time: float, length: int) -> None:
        self._advance(time)
        self._queue_now = length

    def set_mode(self, time: float, mode: str) -> None:
        self._advance(time)
        self._mode_now = mode

    def add_switch_energy(self, joules: float) -> None:
        self.energy += joules
        self.n_switches += 1

    def record_departure(self, arrival_time: float, departure_time: float) -> None:
        self.waiting_times.append(departure_time - arrival_time)
        self.n_completed += 1

    def record_pm_invocation(self, issued_command: bool) -> None:
        self.n_pm_invocations += 1
        if issued_command:
            self.n_pm_commands += 1

    def finalize(self, end_time: float) -> None:
        """Close the last constant segment at *end_time*."""
        self._advance(end_time)
        self._finalized_at = end_time

    # -- summaries -------------------------------------------------------------

    @property
    def elapsed(self) -> float:
        return self._finalized_at - self._start

    def average_power(self) -> float:
        return self.energy / self.elapsed if self.elapsed > 0 else 0.0

    def average_queue_length(self) -> float:
        return self.queue_time_integral / self.elapsed if self.elapsed > 0 else 0.0

    def average_waiting_time(self) -> float:
        if not self.waiting_times:
            return 0.0
        return sum(self.waiting_times) / len(self.waiting_times)
