"""Service-time distributions for model-mismatch experiments.

The CTMDP model *assumes* exponential service (Section III); real
devices often have near-deterministic or highly variable service times.
These samplers let the simulator run any of them so the robustness
ablation can measure how far the exponential-assuming optimal policy
degrades when the assumption breaks.

All samplers are parameterized by their *mean* so a swap is
mean-preserving; what changes is the squared coefficient of variation
``scv = Var/mean^2``:

- :class:`ExponentialService` -- scv 1 (the model's assumption);
- :class:`DeterministicService` -- scv 0;
- :class:`ErlangService` -- scv ``1/k`` (between the two);
- :class:`HyperexponentialService` -- scv > 1 (bursty services).
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidModelError


class ServiceDistribution:
    """Interface: draw one service duration with the given *mean*."""

    #: Squared coefficient of variation, for reporting.
    scv: float

    def sample(self, mean: float, rng: np.random.Generator) -> float:
        raise NotImplementedError


class ExponentialService(ServiceDistribution):
    """The model's assumption: ``Exp(mean)``, scv = 1."""

    scv = 1.0

    def sample(self, mean: float, rng: np.random.Generator) -> float:
        return float(rng.exponential(mean))


class DeterministicService(ServiceDistribution):
    """Fixed duration, scv = 0 (e.g. fixed-size DMA transfers)."""

    scv = 0.0

    def sample(self, mean: float, rng: np.random.Generator) -> float:
        return float(mean)


class ErlangService(ServiceDistribution):
    """Erlang-k: sum of k exponentials, scv = 1/k.

    Parameters
    ----------
    k:
        Number of stages (>= 1); larger k means more regular services.
    """

    def __init__(self, k: int) -> None:
        if k < 1:
            raise InvalidModelError(f"Erlang stages must be >= 1, got {k}")
        self.k = int(k)
        self.scv = 1.0 / self.k

    def sample(self, mean: float, rng: np.random.Generator) -> float:
        return float(rng.gamma(shape=self.k, scale=mean / self.k))


class HyperexponentialService(ServiceDistribution):
    """Two-phase hyperexponential (H2), scv > 1.

    With probability ``p`` the service is a short job of mean
    ``mean_short``, otherwise a long one; the phase means are derived
    from the requested overall mean and the target scv using balanced
    means (the standard two-moment H2 fit).

    Parameters
    ----------
    scv:
        Target squared coefficient of variation; must exceed 1.
    """

    def __init__(self, scv: float) -> None:
        if scv <= 1.0:
            raise InvalidModelError(f"H2 requires scv > 1, got {scv}")
        self.scv = float(scv)
        # Balanced-means fit: p = (1 + sqrt((scv-1)/(scv+1))) / 2.
        root = np.sqrt((self.scv - 1.0) / (self.scv + 1.0))
        self._p_short = 0.5 * (1.0 + root)

    def sample(self, mean: float, rng: np.random.Generator) -> float:
        p = self._p_short
        if rng.random() < p:
            phase_mean = mean / (2.0 * p)
        else:
            phase_mean = mean / (2.0 * (1.0 - p))
        return float(rng.exponential(phase_mean))
