"""The event-driven power-managed-system simulator (Section V).

Ties together the arrival process (SR), the FIFO queue (SQ), the
simulated provider (SP) and a power-management policy (PM). The PM is
invoked *asynchronously* -- only when the system state changes (arrival,
service completion, switch completion, or an expired policy timer) --
which is the paper's key practicality claim over per-time-slice
discrete-time managers; the simulator counts PM invocations so the
claim can be quantified.

Semantics (matching the CTMDP model; see :mod:`repro.sim.provider`):

- service runs whenever the mode is active, a request waits, and the
  system is not in a *transfer* (between a completion and the completion
  of the PM-commanded switch);
- a mid-flight switch can be re-targeted or cancelled by a newer
  command (memorylessness makes this exact);
- an active-to-active mode change mid-service re-draws the remaining
  service time at the new rate;
- a command that would power down a busy server is handled per
  ``busy_powerdown``: ``"reject"`` (default -- real devices refuse,
  matching the paper's constraint 1) or ``"preempt"`` (abort the
  in-flight service and re-queue the request at the head; used by the
  no-transfer-state ablation to exhibit [11]'s modeling error).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.dpm.service_provider import ServiceProvider
from repro.errors import SimulationError
from repro.obs.log import get_logger
from repro.obs.runtime import active as obs_active
from repro.policies.base import Decision, PowerManagementPolicy, SystemView
from repro.sim.distributions import ServiceDistribution
from repro.sim.engine import EventHandle, EventScheduler
from repro.sim.provider import SimulatedProvider
from repro.sim.queue_sim import FIFORequestQueue
from repro.sim.recorder import RequestRecord, TimelineRecorder
from repro.sim.rng import RandomStreams
from repro.sim.stats import StatsCollector
from repro.sim.workload import ArrivalProcess

ARRIVAL = "arrival"
SERVICE_COMPLETE = "service_complete"
SWITCH_COMPLETE = "switch_complete"
TIMER = "timer"
START = "start"

BUSY_POWERDOWN_MODES = ("reject", "preempt")

logger = get_logger(__name__)

#: Queue-occupancy histogram buckets: occupancies are small integers,
#: so unit-width buckets up to 64 then the overflow bucket.
OCCUPANCY_BUCKETS = tuple(float(i) for i in range(65))


@dataclass(frozen=True)
class SimulationResult:
    """Aggregate outcome of one simulation run.

    ``average_waiting_time`` is the mean sojourn (arrival to departure)
    of completed requests -- the Table-1 quantity. ``n_unserved`` counts
    requests still in the system when the run was cut off (non-zero only
    if the policy never woke the server for them).
    """

    policy_name: str
    seed: int
    elapsed: float
    average_power: float
    average_queue_length: float
    average_waiting_time: float
    n_generated: int
    n_accepted: int
    n_lost: int
    n_completed: int
    n_unserved: int
    n_switches: int
    n_pm_invocations: int
    n_pm_commands: int
    mode_residency: "Dict[str, float]" = field(default_factory=dict)

    @property
    def loss_probability(self) -> float:
        return self.n_lost / self.n_generated if self.n_generated else 0.0

    @property
    def throughput(self) -> float:
        return self.n_completed / self.elapsed if self.elapsed > 0 else 0.0


class Simulator:
    """One simulation run of SR + SQ + SP + PM.

    Parameters
    ----------
    provider:
        The SP description (modes, rates, powers, energies).
    capacity:
        The system capacity ``Q`` (waiting + in service).
    workload:
        The arrival process.
    policy:
        The power manager.
    n_requests:
        Stop generating after this many arrivals; the run then drains
        (or is cut when no events remain).
    seed:
        Master seed; arrivals, service times and switch latencies use
        independent named substreams.
    initial_mode:
        SP mode at time zero; defaults to the deepest sleep mode.
    busy_powerdown:
        ``"reject"`` or ``"preempt"``; see the module docstring.
    """

    def __init__(
        self,
        provider: ServiceProvider,
        capacity: int,
        workload: ArrivalProcess,
        policy: PowerManagementPolicy,
        n_requests: int,
        seed: int = 0,
        initial_mode: Optional[str] = None,
        busy_powerdown: str = "reject",
        service_distribution: "ServiceDistribution | None" = None,
        recorder: "TimelineRecorder | None" = None,
    ) -> None:
        if n_requests < 1:
            raise SimulationError(f"n_requests must be >= 1, got {n_requests}")
        if busy_powerdown not in BUSY_POWERDOWN_MODES:
            raise SimulationError(
                f"busy_powerdown must be one of {BUSY_POWERDOWN_MODES}, "
                f"got {busy_powerdown!r}"
            )
        from repro.robust.admission import admit_inputs

        # Entry-level admission: the same input gate the SYS model runs,
        # minus the arrival-rate check (workloads may be trace-driven).
        admit_inputs(provider, None, capacity)
        self.provider_description = provider
        self.capacity = int(capacity)
        self.workload = workload
        self.policy = policy
        self.n_requests = int(n_requests)
        self.seed = int(seed)
        self.busy_powerdown = busy_powerdown
        self.initial_mode = (
            initial_mode if initial_mode is not None else provider.deepest_sleep_mode()
        )
        self.service_distribution = service_distribution
        self.recorder = recorder

    # -- run -----------------------------------------------------------------

    def run(self) -> SimulationResult:
        # Observability is resolved once per run: the per-event cost of
        # the disabled default is a single ``is not None`` check.
        ins = obs_active()
        self._metrics = ins.metrics
        self._occ_hist = None
        self._lat_hist = None
        event_counts: "Optional[Dict[str, int]]" = None
        if self._metrics is not None:
            self._occ_hist = self._metrics.histogram(
                "sim.queue_occupancy", bounds=OCCUPANCY_BUCKETS
            )
            self._lat_hist = self._metrics.histogram(
                "profile.sim.pm_decision_latency_s", profiling=True
            )
            event_counts = {}
            wall_start = time.perf_counter()
        self.streams = RandomStreams(self.seed)
        self.scheduler = EventScheduler()
        self.sp = SimulatedProvider(
            self.provider_description,
            self.initial_mode,
            service_distribution=self.service_distribution,
        )
        self.queue = FIFORequestQueue(self.capacity)
        self.stats = StatsCollector()
        self.stats.set_mode(0.0, self.sp.mode)
        self.stats.set_power(0.0, self.sp.power_now())
        if self.recorder is not None:
            self.recorder.record_mode(0.0, self.sp.mode)
            self.recorder.record_queue(0.0, 0)
        if self._occ_hist is not None:
            self._occ_hist.observe(0)
        self.in_transfer = False
        self.version = 0
        self.n_generated = 0
        self._service_event: Optional[EventHandle] = None
        self._switch_event: Optional[EventHandle] = None
        self.workload.reset(self.streams.stream("arrivals"))
        self.policy.reset()

        self._schedule_next_arrival()
        self._invoke_policy(START, arrival_lost=False)
        self._maybe_start_service()

        while True:
            event = self.scheduler.pop()
            if event is None:
                break
            if self.recorder is not None:
                self.recorder.record_event(self.scheduler.now, event.kind)
            if event_counts is not None:
                event_counts[event.kind] = event_counts.get(event.kind, 0) + 1
            if event.kind == ARRIVAL:
                self._on_arrival()
            elif event.kind == SERVICE_COMPLETE:
                self._on_service_complete()
            elif event.kind == SWITCH_COMPLETE:
                self._on_switch_complete()
            elif event.kind == TIMER:
                self._on_timer(event.payload)
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unknown event kind {event.kind!r}")
            if self._drained():
                break

        end_time = self.scheduler.now
        self.stats.finalize(end_time)
        if self.recorder is not None:
            for request in self.queue.pending_requests():
                self.recorder.record_request(
                    RequestRecord(
                        request_id=request.request_id,
                        arrival_time=request.arrival_time,
                        service_start_time=request.service_start_time,
                        departure_time=None,
                        lost=False,
                    )
                )
            self.recorder.finalize(end_time)
        if self._metrics is not None:
            self._publish_metrics(event_counts, time.perf_counter() - wall_start)
        return SimulationResult(
            policy_name=self.policy.name,
            seed=self.seed,
            elapsed=self.stats.elapsed,
            average_power=self.stats.average_power(),
            average_queue_length=self.stats.average_queue_length(),
            average_waiting_time=self.stats.average_waiting_time(),
            n_generated=self.n_generated,
            n_accepted=self.queue.n_accepted,
            n_lost=self.queue.n_lost,
            n_completed=self.stats.n_completed,
            n_unserved=self.queue.occupancy,
            n_switches=self.stats.n_switches,
            n_pm_invocations=self.stats.n_pm_invocations,
            n_pm_commands=self.stats.n_pm_commands,
            mode_residency=dict(self.stats.mode_residency),
        )

    def _publish_metrics(
        self, event_counts: "Dict[str, int]", wall_s: float
    ) -> None:
        """Fold this run's aggregates into the active metrics registry.

        Everything here is either integer-counted or exactly summed, so
        registries merged from parallel workers reproduce the serial
        registry bit-for-bit (wall-clock instruments are flagged
        ``profiling`` and excluded from that contract).
        """
        m = self._metrics
        n_events = sum(event_counts.values())
        m.counter("sim.runs").inc()
        m.counter("sim.events").inc(n_events)
        for kind in sorted(event_counts):
            m.counter(f"sim.events.{kind}").inc(event_counts[kind])
        m.counter("sim.requests.generated").inc(self.n_generated)
        m.counter("sim.requests.accepted").inc(self.queue.n_accepted)
        m.counter("sim.requests.lost").inc(self.queue.n_lost)
        m.counter("sim.requests.completed").inc(self.stats.n_completed)
        m.counter("sim.switches").inc(self.stats.n_switches)
        m.counter("sim.pm.invocations").inc(self.stats.n_pm_invocations)
        m.counter("sim.pm.commands").inc(self.stats.n_pm_commands)
        m.counter("sim.time_simulated_s").inc(float(self.stats.elapsed))
        waiting = m.histogram("sim.waiting_time_s")
        for sojourn in self.stats.waiting_times:
            waiting.observe(sojourn)
        m.histogram("profile.sim.wall_s", profiling=True).observe(wall_s)
        if wall_s > 0:
            m.histogram("profile.sim.events_per_s", profiling=True).observe(
                n_events / wall_s
            )
        logger.debug(
            "simulation finished: %d events in %.3fs wall (%.0f events/s), "
            "%d requests, policy %s",
            n_events, wall_s, n_events / wall_s if wall_s > 0 else 0.0,
            self.n_generated, self.policy.name,
        )

    def _drained(self) -> bool:
        """All generated requests resolved and nothing left in flight.

        A final in-flight switch (e.g. the power-down commanded after
        the last departure) is allowed to complete so its energy is
        counted.
        """
        return (
            self.n_generated >= self.n_requests
            and self.queue.is_empty()
            and not self.sp.is_serving
            and not self.sp.is_switching
        )

    # -- event handlers ----------------------------------------------------------

    def _schedule_next_arrival(self) -> None:
        if self.n_generated >= self.n_requests:
            return
        t = self.workload.next_arrival(self.scheduler.now)
        if t is None:
            self.n_requests = self.n_generated  # trace exhausted
            return
        self.scheduler.schedule_at(t, ARRIVAL)

    def _on_arrival(self) -> None:
        now = self.scheduler.now
        self.n_generated += 1
        request = self.queue.offer(now)
        lost = request is None
        if not lost:
            self.stats.set_queue_length(now, self.queue.occupancy)
            if self.recorder is not None:
                self.recorder.record_queue(now, self.queue.occupancy)
            if self._occ_hist is not None:
                self._occ_hist.observe(self.queue.occupancy)
        elif self.recorder is not None:
            self.recorder.record_request(
                RequestRecord(
                    request_id=-1,
                    arrival_time=now,
                    service_start_time=None,
                    departure_time=None,
                    lost=True,
                )
            )
        self._schedule_next_arrival()
        self._invoke_policy(ARRIVAL, arrival_lost=lost)
        self._maybe_start_service()

    def _on_service_complete(self) -> None:
        now = self.scheduler.now
        self._service_event = None
        self.sp.is_serving = False
        request = self.queue.complete_service(now)
        self.stats.record_departure(request.arrival_time, now)
        self.stats.set_queue_length(now, self.queue.occupancy)
        if self._occ_hist is not None:
            self._occ_hist.observe(self.queue.occupancy)
        if self.recorder is not None:
            self.recorder.record_queue(now, self.queue.occupancy)
            self.recorder.record_request(
                RequestRecord(
                    request_id=request.request_id,
                    arrival_time=request.arrival_time,
                    service_start_time=request.service_start_time,
                    departure_time=now,
                    lost=False,
                )
            )
        self.in_transfer = True
        decision_command = self._invoke_policy(SERVICE_COMPLETE, arrival_lost=False)
        if decision_command is None:
            # No command at a transfer point means "stay" (the paper's
            # instantaneous self-switch).
            self.in_transfer = False
        self._maybe_start_service()

    def _on_switch_complete(self) -> None:
        now = self.scheduler.now
        self._switch_event = None
        energy = self.sp.finish_switch()
        self.stats.set_mode(now, self.sp.mode)
        self.stats.set_power(now, self.sp.power_now())
        self.stats.add_switch_energy(energy)
        if self.recorder is not None:
            self.recorder.record_mode(now, self.sp.mode)
            self.recorder.record_switch_energy(now, energy)
        self.in_transfer = False
        if self.sp.is_serving:
            # Active-to-active change mid-service: re-draw the remaining
            # service time at the new rate (exact by memorylessness).
            assert self._service_event is not None
            self._service_event.cancel()
            delay = self.sp.draw_service_time(self.streams.stream("service"))
            self._service_event = self.scheduler.schedule_after(delay, SERVICE_COMPLETE)
        self._invoke_policy(SWITCH_COMPLETE, arrival_lost=False)
        self._maybe_start_service()

    def _on_timer(self, payload) -> None:
        scheduled_version = payload
        if scheduled_version != self.version:
            return  # stale: something changed since the policy asked
        self._invoke_policy(TIMER, arrival_lost=False)
        self._maybe_start_service()

    # -- policy plumbing --------------------------------------------------------

    def _view(self, event: str, arrival_lost: bool) -> SystemView:
        return SystemView(
            time=self.scheduler.now,
            event=event,
            mode=self.sp.mode,
            switch_target=self.sp.switch_target,
            in_transfer=self.in_transfer,
            occupancy=self.queue.occupancy,
            waiting_count=self.queue.waiting_count,
            is_serving=self.sp.is_serving,
            capacity=self.capacity,
            arrival_lost=arrival_lost,
            provider=self.provider_description,
        )

    def _invoke_policy(self, event: str, arrival_lost: bool) -> Optional[str]:
        """Call the PM; apply its decision. Returns the command issued."""
        self.version += 1
        if self._lat_hist is not None:
            decide_start = time.perf_counter()
            decision = self.policy.decide(self._view(event, arrival_lost))
            self._lat_hist.observe(time.perf_counter() - decide_start)
        else:
            decision = self.policy.decide(self._view(event, arrival_lost))
        if not isinstance(decision, Decision):
            raise SimulationError(
                f"policy {self.policy.name} returned {type(decision).__name__}, "
                "expected Decision"
            )
        issued = None
        if decision.command is not None:
            if self._apply_command(decision.command):
                issued = decision.command
        self.stats.record_pm_invocation(issued is not None)
        if decision.recheck_after is not None:
            if decision.recheck_after < 0:
                raise SimulationError(
                    f"recheck_after must be >= 0, got {decision.recheck_after:g}"
                )
            self.scheduler.schedule_after(decision.recheck_after, TIMER, self.version)
        return issued

    def _apply_command(self, target: str) -> bool:
        """Retarget the SP toward *target*; returns True if it changed
        anything."""
        self.provider_description.index_of(target)  # validates the name
        sp = self.sp
        if sp.is_switching:
            if target == sp.switch_target:
                return False  # already heading there; keep the draw
            assert self._switch_event is not None
            self._switch_event.cancel()
            self._switch_event = None
            sp.cancel_switch()
        if target == sp.mode:
            # "Stay": also resolves a transfer instantly.
            self.in_transfer = False
            return True
        if (
            sp.is_serving
            and not self.provider_description.is_active(target)
        ):
            if self.busy_powerdown == "reject":
                return False  # the device refuses to power down mid-service
            self._preempt_service()
        sp.begin_switch(target)
        delay = sp.draw_switch_time(target, self.streams.stream("switching"))
        self._switch_event = self.scheduler.schedule_after(delay, SWITCH_COMPLETE)
        return True

    def _preempt_service(self) -> None:
        """Abort the in-flight service; the request returns to the head."""
        assert self._service_event is not None
        self._service_event.cancel()
        self._service_event = None
        self.sp.is_serving = False
        self.queue.requeue_in_service()

    def _maybe_start_service(self) -> None:
        heading_down = (
            self.sp.switch_target is not None
            and not self.provider_description.is_active(self.sp.switch_target)
        )
        if (
            self.in_transfer
            or self.sp.is_serving
            or not self.sp.is_active
            or heading_down
            or self.queue.waiting_count == 0
        ):
            return
        self.queue.start_service(self.scheduler.now)
        self.sp.is_serving = True
        delay = self.sp.draw_service_time(self.streams.stream("service"))
        self._service_event = self.scheduler.schedule_after(delay, SERVICE_COMPLETE)


def simulate(
    provider: ServiceProvider,
    capacity: int,
    workload: ArrivalProcess,
    policy: PowerManagementPolicy,
    n_requests: int,
    seed: int = 0,
    initial_mode: Optional[str] = None,
    busy_powerdown: str = "reject",
    service_distribution: "ServiceDistribution | None" = None,
    recorder: "TimelineRecorder | None" = None,
) -> SimulationResult:
    """One-shot convenience wrapper around :class:`Simulator`."""
    return Simulator(
        provider=provider,
        capacity=capacity,
        workload=workload,
        policy=policy,
        n_requests=n_requests,
        seed=seed,
        initial_mode=initial_mode,
        busy_powerdown=busy_powerdown,
        service_distribution=service_distribution,
        recorder=recorder,
    ).run()
