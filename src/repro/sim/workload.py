"""Arrival processes (the simulator-side service requestor).

Every process implements the small :class:`ArrivalProcess` interface:
``reset(rng)`` rebinds it to a random stream and clears state, and
``next_arrival(now)`` returns the absolute time of the next request
(``None`` when a finite trace is exhausted).

Provided processes:

- :class:`PoissonProcess` -- the paper's SR (rate ``lambda``).
- :class:`PiecewiseRateProcess` -- a Poisson process whose rate steps
  through segments (Figure 5-style rate sweeps, adaptive experiments).
- :class:`MMPPProcess` -- Markov-modulated Poisson process for bursty
  traffic (the wireless-NIC example).
- :class:`TraceArrivals` -- replay of explicit arrival times (also how
  the clairvoyant oracle policy gets lookahead).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import InvalidModelError


class ArrivalProcess:
    """Interface for arrival-time generators."""

    def reset(self, rng: np.random.Generator) -> None:
        """Bind to a random stream and clear internal state."""
        raise NotImplementedError

    def next_arrival(self, now: float) -> Optional[float]:
        """Absolute time of the next arrival after *now*; ``None`` = done."""
        raise NotImplementedError


class PoissonProcess(ArrivalProcess):
    """Homogeneous Poisson arrivals with rate ``lambda``."""

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise InvalidModelError(f"arrival rate must be positive, got {rate}")
        self.rate = float(rate)
        self._rng: Optional[np.random.Generator] = None

    def reset(self, rng: np.random.Generator) -> None:
        self._rng = rng

    def next_arrival(self, now: float) -> Optional[float]:
        if self._rng is None:
            raise InvalidModelError("call reset() before drawing arrivals")
        return now + float(self._rng.exponential(1.0 / self.rate))


class PiecewiseRateProcess(ArrivalProcess):
    """Poisson arrivals whose rate steps through timed segments.

    Parameters
    ----------
    segments:
        ``[(duration, rate), ...]``; after the last segment the final
        rate holds forever. Uses thinning-free exact generation: each
        inter-arrival is drawn at the rate of the segment containing the
        current time, re-drawn from the segment boundary if it crosses
        one (valid because the exponential is memoryless).
    """

    def __init__(self, segments: Sequence[Tuple[float, float]]) -> None:
        if not segments:
            raise InvalidModelError("need at least one (duration, rate) segment")
        for duration, rate in segments:
            if duration <= 0 or rate <= 0:
                raise InvalidModelError(
                    f"durations and rates must be positive, got ({duration}, {rate})"
                )
        self.segments = [(float(d), float(r)) for d, r in segments]
        self._rng: Optional[np.random.Generator] = None
        # Precompute segment start times.
        self._starts: List[float] = []
        t = 0.0
        for duration, _ in self.segments:
            self._starts.append(t)
            t += duration
        self._end_of_schedule = t

    def rate_at(self, t: float) -> float:
        """The instantaneous rate at absolute time *t*."""
        if t >= self._end_of_schedule:
            return self.segments[-1][1]
        for start, (duration, rate) in zip(self._starts, self.segments):
            if start <= t < start + duration:
                return rate
        return self.segments[-1][1]

    def _segment_end(self, t: float) -> float:
        if t >= self._end_of_schedule:
            return np.inf
        for start, (duration, _) in zip(self._starts, self.segments):
            if start <= t < start + duration:
                return start + duration
        return np.inf

    def reset(self, rng: np.random.Generator) -> None:
        self._rng = rng

    def next_arrival(self, now: float) -> Optional[float]:
        if self._rng is None:
            raise InvalidModelError("call reset() before drawing arrivals")
        t = now
        while True:
            rate = self.rate_at(t)
            candidate = t + float(self._rng.exponential(1.0 / rate))
            boundary = self._segment_end(t)
            if candidate <= boundary:
                return candidate
            # Crossed into the next segment: restart from the boundary
            # (memorylessness makes this exact).
            t = boundary


class MMPPProcess(ArrivalProcess):
    """Markov-modulated Poisson process.

    A background CTMC with generator *modulator* switches among phases;
    phase ``k`` emits Poisson arrivals at ``rates[k]``. Classic model
    for bursty, correlated traffic that a plain Poisson SR cannot
    express.

    Parameters
    ----------
    rates:
        Per-phase arrival rates (non-negative; a zero-rate phase is an
        "off" phase).
    modulator:
        Phase-switching generator matrix (validated).
    initial_phase:
        Starting phase index.
    """

    def __init__(
        self,
        rates: Sequence[float],
        modulator: np.ndarray,
        initial_phase: int = 0,
    ) -> None:
        from repro.markov.generator import validate_generator

        self.modulator = validate_generator(np.asarray(modulator, dtype=float))
        self.rates = np.asarray(rates, dtype=float)
        if self.rates.shape != (self.modulator.shape[0],):
            raise InvalidModelError(
                f"{len(self.rates)} rates for a "
                f"{self.modulator.shape[0]}-phase modulator"
            )
        if np.any(self.rates < 0):
            raise InvalidModelError("phase rates must be non-negative")
        if not np.any(self.rates > 0):
            raise InvalidModelError("at least one phase must have a positive rate")
        if not 0 <= initial_phase < len(self.rates):
            raise InvalidModelError(f"initial phase {initial_phase} out of range")
        self._initial_phase = initial_phase
        self._rng: Optional[np.random.Generator] = None
        self._phase = initial_phase
        self._phase_until: Optional[float] = None

    def reset(self, rng: np.random.Generator) -> None:
        self._rng = rng
        self._phase = self._initial_phase
        self._phase_until = None

    def _phase_end(self, start: float) -> float:
        """Draw the end time of the current phase entered at *start*."""
        assert self._rng is not None
        exit_rate = -float(self.modulator[self._phase, self._phase])
        if exit_rate <= 0:
            return np.inf
        return start + float(self._rng.exponential(1.0 / exit_rate))

    def _advance_phase(self, t: float) -> None:
        """Jump phases until the current phase interval covers time *t*."""
        if self._phase_until is None:
            self._phase_until = self._phase_end(0.0)
        while self._phase_until <= t:
            boundary = self._phase_until
            self._jump_phase()
            self._phase_until = self._phase_end(boundary)

    def _jump_phase(self) -> None:
        assert self._rng is not None
        row = self.modulator[self._phase].copy()
        row[self._phase] = 0.0
        probs = row / row.sum()
        self._phase = int(self._rng.choice(len(probs), p=probs))

    def next_arrival(self, now: float) -> Optional[float]:
        if self._rng is None:
            raise InvalidModelError("call reset() before drawing arrivals")
        t = now
        while True:
            self._advance_phase(t)
            rate = float(self.rates[self._phase])
            boundary = self._phase_until
            assert boundary is not None
            if rate <= 0:
                if not np.isfinite(boundary):
                    raise InvalidModelError(
                        "absorbing zero-rate MMPP phase: no further arrivals"
                    )
                t = boundary  # wait out the silent phase
                continue
            candidate = t + float(self._rng.exponential(1.0 / rate))
            if candidate <= boundary:
                return candidate
            t = boundary


class TraceArrivals(ArrivalProcess):
    """Replays an explicit, sorted list of arrival times."""

    def __init__(self, times: Sequence[float]) -> None:
        self.times = [float(t) for t in times]
        if any(b < a for a, b in zip(self.times, self.times[1:])):
            raise InvalidModelError("trace times must be non-decreasing")
        if any(t < 0 for t in self.times):
            raise InvalidModelError("trace times must be non-negative")
        self._cursor = 0

    def reset(self, rng: np.random.Generator) -> None:
        self._cursor = 0

    def next_arrival(self, now: float) -> Optional[float]:
        while self._cursor < len(self.times) and self.times[self._cursor] < now:
            self._cursor += 1
        if self._cursor >= len(self.times):
            return None
        t = self.times[self._cursor]
        self._cursor += 1
        return t

    def peek_after(self, t: float) -> Optional[float]:
        """First trace time strictly after *t* (oracle lookahead)."""
        import bisect

        i = bisect.bisect_right(self.times, t)
        return self.times[i] if i < len(self.times) else None
