"""Fault-tolerant process-pool fan-out for independent simulation work.

Replications in :mod:`repro.sim.batch` are embarrassingly parallel:
every run is fully determined by its seed, and runs share no state.
:func:`parallel_map` exploits that with a ``fork``-based worker pool
while preserving the serial semantics exactly:

- **Determinism** -- each item's result comes from exactly one
  *successful* evaluation of the mapped function, and results are
  returned in input order. A function whose output depends only on its
  item (e.g. a seeded simulation) therefore produces output identical
  to the serial map, byte for byte, for every ``n_jobs`` -- even when
  workers crash, hang, or return rejected results along the way,
  because every recovery path re-executes the same chunk of items and
  chunk results are merged in input order regardless of completion
  order.
- **No pickling of work** -- the function and item list are published in
  a module global *before* the fork, so workers inherit them through the
  process image. Closures over local factories (how
  :func:`repro.sim.batch.run_replications` builds its per-seed work)
  need no pickle support; only chunk indices and results cross the
  process boundary.
- **Chunked dispatch** -- items are split into contiguous index chunks
  (about four per worker) to amortize dispatch overhead while keeping
  the pool load-balanced when per-item runtimes vary.

**Failure semantics** (the degradation ladder; DESIGN.md section 8):

1. A **crashed** worker (abrupt exit, segfault, OOM kill) is detected
   through its closed result pipe; its chunk is requeued and a
   replacement worker is forked.
2. A **hung** worker (no result within ``timeout_s`` of its chunk
   assignment; detection off when ``timeout_s`` is ``None``) is
   terminated and replaced, and its chunk requeued.
3. A chunk whose results fail the optional ``validate`` predicate
   (e.g. NaN contamination) is treated exactly like a crash.
4. Each requeue counts against the chunk's ``max_retries`` budget, with
   deterministic exponential backoff (``backoff_s * 2**(attempt-1)``,
   no jitter) between attempts.
5. A chunk that exhausts its budget **degrades to serial**: the parent
   re-executes it in-process after the pool drains. Only if that also
   fails (validation still rejecting) does
   :class:`~repro.errors.WorkerFailureError` surface, carrying the full
   per-chunk failure history.

Recovery events are counted in ``repro.obs`` under ``parallel.*``
(worker_crashes, worker_timeouts, validation_failures, retries,
degraded_chunks, serial_fallbacks); the counters are created with
``profiling=True`` since they describe the *execution*, not the result,
and must not break the deterministic parallel-equals-serial view.
Deterministic fault injection for exercising every rung lives in
:mod:`repro.robust.faultinject`.

``n_jobs`` follows the common convention: ``None`` or ``1`` runs
serially in-process, ``k > 1`` uses ``k`` workers, ``-1`` uses all
available cores, and ``0`` is rejected. Platforms without the ``fork``
start method and nested calls from inside a worker degrade to the
serial path -- same results, no pool -- and announce the capacity loss
through a :class:`RuntimeWarning` plus the
``parallel.serial_fallbacks`` counter instead of hiding it.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import time
import warnings
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.errors import SimulationError, WorkerFailureError
from repro.obs import runtime as obs_runtime
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.robust import faultinject

T = TypeVar("T")
R = TypeVar("R")

#: Work shared with forked workers: ``(fn, items)`` published before the
#: fork so the pool inherits it; ``None`` whenever no pool is running.
_WORK: "Optional[tuple]" = None

#: Default per-chunk retry budget before degrading to serial.
MAX_RETRIES = 2

#: Base of the deterministic exponential backoff between retries, in
#: seconds: attempt ``k`` (1-based) waits ``BACKOFF_S * 2**(k-1)``.
BACKOFF_S = 0.05


def resolve_n_jobs(n_jobs: Optional[int]) -> int:
    """Normalize an ``n_jobs`` request to a positive worker count.

    ``None`` means serial (1). Negative values request all available
    cores (``os.cpu_count()``). Zero is a usage error.
    """
    if n_jobs is None:
        return 1
    n_jobs = int(n_jobs)
    if n_jobs == 0:
        raise SimulationError("n_jobs must not be 0; use None or 1 for serial")
    if n_jobs < 0:
        return max(1, os.cpu_count() or 1)
    return n_jobs


def _chunk_indices(n_items: int, n_chunks: int) -> "List[range]":
    """Split ``range(n_items)`` into contiguous, near-equal chunks."""
    n_chunks = max(1, min(n_chunks, n_items))
    base, extra = divmod(n_items, n_chunks)
    chunks: List[range] = []
    start = 0
    for c in range(n_chunks):
        size = base + (1 if c < extra else 0)
        chunks.append(range(start, start + size))
        start += size
    return chunks


def _serial_fallback_observed(reason: str) -> None:
    """Announce a silent-capacity-loss serial fallback (counter + warning).

    The counter is ``profiling`` because it describes execution
    placement, which legitimately differs between serial and parallel
    runs, and so must stay out of the deterministic metrics view.
    """
    ins = obs_runtime.active()
    if ins.metrics is not None:
        ins.metrics.counter("parallel.serial_fallbacks", profiling=True).inc()
    warnings.warn(
        f"parallel_map: falling back to serial execution ({reason}); "
        "requested parallelism is not being used",
        RuntimeWarning,
        stacklevel=3,
    )


def _recovery_counter(name: str) -> None:
    ins = obs_runtime.active()
    if ins.metrics is not None:
        ins.metrics.counter(name, profiling=True).inc()


ChunkPayload = Tuple[List[Any], Optional[dict], Optional[list]]


def _execute_chunk(indices: "range", attempt: int) -> ChunkPayload:
    """Evaluate one chunk of the published work (worker or parent).

    When the ambient context carries instrumentation, the chunk runs
    under a *fresh* registry/tracer whose snapshot is shipped back
    beside the results; the caller merges snapshots in chunk (= input)
    order, so the merged registry is bit-for-bit the registry a serial
    run would have built (wall-clock instruments are flagged
    ``profiling`` and exempt from that identity). ``attempt`` is the
    chunk's retry count, threaded through so deterministic fault
    injection can disarm after a chosen number of attempts.
    """
    fn, items = _WORK
    parent = obs_runtime.active()
    if not parent.enabled:
        return (
            [faultinject.maybe_fault(i, attempt, fn(items[i])) for i in indices],
            None,
            None,
        )
    registry = MetricsRegistry() if parent.metrics is not None else None
    tracer = (
        Tracer(epoch=parent.tracer.epoch) if parent.tracer is not None else None
    )
    with obs_runtime.instrument(metrics=registry, tracer=tracer):
        results = [
            faultinject.maybe_fault(i, attempt, fn(items[i])) for i in indices
        ]
    return (
        results,
        registry.to_dict() if registry is not None else None,
        tracer.to_dicts() if tracer is not None else None,
    )


def _worker_loop(conn) -> None:
    """Worker main: serve ``(chunk_id, start, stop, attempt)`` requests."""
    faultinject.mark_worker()
    try:
        while True:
            task = conn.recv()
            if task is None:
                break
            chunk_id, start, stop, attempt = task
            payload = _execute_chunk(range(start, stop), attempt)
            conn.send((chunk_id, payload))
    except (EOFError, KeyboardInterrupt):  # pragma: no cover - parent died
        pass
    finally:
        conn.close()


@dataclass
class _Worker:
    """Parent-side handle of one pool worker."""

    process: Any
    conn: Any
    chunk_id: "Optional[int]" = None
    attempt: int = 0
    deadline: float = float("inf")

    @property
    def busy(self) -> bool:
        return self.chunk_id is not None


@dataclass
class _ChunkState:
    """Scheduling state of one chunk across retries."""

    indices: "range"
    failures: int = 0
    history: "List[str]" = field(default_factory=list)


class _FaultTolerantPool:
    """The scheduler behind :func:`parallel_map`'s parallel path.

    One duplex pipe per worker keeps chunk attribution exact: the
    parent always knows which chunk a dead or overdue worker held, so
    recovery never guesses. ``multiprocessing.connection.wait``
    multiplexes the pipes; per-chunk deadlines are enforced between
    wakeups.
    """

    def __init__(
        self,
        context,
        n_workers: int,
        chunks: "List[range]",
        timeout_s: "Optional[float]",
        max_retries: int,
        backoff_s: float,
        validate: "Optional[Callable[[List[Any]], bool]]",
    ) -> None:
        self._context = context
        self._timeout_s = timeout_s
        self._max_retries = max_retries
        self._backoff_s = backoff_s
        self._validate = validate
        self._chunks = [_ChunkState(indices) for indices in chunks]
        self._pending: "List[Tuple[int, int]]" = [
            (chunk_id, 0) for chunk_id in reversed(range(len(chunks)))
        ]
        self._payloads: "Dict[int, ChunkPayload]" = {}
        self._degraded: "List[int]" = []
        self._workers: "List[_Worker]" = [
            self._spawn() for _ in range(n_workers)
        ]

    # -- lifecycle -----------------------------------------------------------

    def _spawn(self) -> _Worker:
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        process = self._context.Process(
            target=_worker_loop, args=(child_conn,), daemon=True
        )
        process.start()
        child_conn.close()
        return _Worker(process=process, conn=parent_conn)

    def _retire(self, worker: _Worker, terminate: bool) -> None:
        self._workers.remove(worker)
        if terminate and worker.process.is_alive():
            worker.process.terminate()
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover - already gone
            pass
        worker.process.join()

    def shutdown(self) -> None:
        """Stop all workers; called on every exit path."""
        for worker in list(self._workers):
            if not worker.busy and worker.process.is_alive():
                try:
                    worker.conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
            self._retire(worker, terminate=worker.busy)

    # -- scheduling ----------------------------------------------------------

    def _assign(self) -> None:
        for worker in self._workers:
            if not self._pending:
                return
            if worker.busy:
                continue
            chunk_id, attempt = self._pending.pop()
            try:
                indices = self._chunks[chunk_id].indices
                worker.conn.send(
                    (chunk_id, indices.start, indices.stop, attempt)
                )
            except (BrokenPipeError, OSError):
                # The worker died while idle; replace it and requeue.
                self._pending.append((chunk_id, attempt))
                self._retire(worker, terminate=True)
                self._workers.append(self._spawn())
                continue
            worker.chunk_id = chunk_id
            worker.attempt = attempt
            worker.deadline = (
                time.monotonic() + self._timeout_s
                if self._timeout_s is not None
                else float("inf")
            )

    def _fail(self, worker: _Worker, reason: str, counter: str) -> None:
        """One failed attempt: replace the worker, requeue or degrade."""
        chunk_id = worker.chunk_id
        self._retire(worker, terminate=True)
        self._workers.append(self._spawn())
        _recovery_counter(counter)
        state = self._chunks[chunk_id]
        state.failures += 1
        state.history.append(reason)
        if state.failures <= self._max_retries:
            _recovery_counter("parallel.retries")
            # Deterministic exponential backoff -- no jitter, so retry
            # schedules are reproducible in tests and traces.
            time.sleep(self._backoff_s * 2 ** (state.failures - 1))
            self._pending.append((chunk_id, state.failures))
        else:
            _recovery_counter("parallel.degraded_chunks")
            self._degraded.append(chunk_id)

    def _complete(self, worker: _Worker, payload: ChunkPayload) -> None:
        chunk_id = worker.chunk_id
        if self._validate is not None and not self._validate(payload[0]):
            self._fail(
                worker,
                f"attempt {worker.attempt}: results rejected by validation",
                "parallel.validation_failures",
            )
            return
        self._payloads[chunk_id] = payload
        worker.chunk_id = None
        worker.deadline = float("inf")

    def run(self) -> "Tuple[Dict[int, ChunkPayload], List[int], List[_ChunkState]]":
        """Drive the pool until every chunk completed or degraded."""
        while self._pending or any(w.busy for w in self._workers):
            self._assign()
            busy = [w for w in self._workers if w.busy]
            if not busy:
                continue
            now = time.monotonic()
            next_deadline = min(w.deadline for w in busy)
            wait_s = (
                None
                if next_deadline == float("inf")
                else max(0.0, next_deadline - now)
            )
            ready = multiprocessing.connection.wait(
                [w.conn for w in busy], timeout=wait_s
            )
            for conn in ready:
                worker = next(w for w in self._workers if w.conn is conn)
                try:
                    chunk_id, payload = worker.conn.recv()
                except (EOFError, OSError):
                    self._fail(
                        worker,
                        f"attempt {worker.attempt}: worker "
                        f"pid={worker.process.pid} crashed "
                        f"(exitcode={worker.process.exitcode})",
                        "parallel.worker_crashes",
                    )
                    continue
                assert chunk_id == worker.chunk_id
                self._complete(worker, payload)
            now = time.monotonic()
            for worker in [w for w in self._workers if w.busy]:
                if worker.deadline <= now:
                    self._fail(
                        worker,
                        f"attempt {worker.attempt}: no result within "
                        f"{self._timeout_s:g}s, worker terminated",
                        "parallel.worker_timeouts",
                    )
        return self._payloads, sorted(self._degraded), self._chunks


def parallel_map(
    fn: "Callable[[T], R]",
    items: "Sequence[T]",
    n_jobs: Optional[int] = None,
    timeout_s: "Optional[float]" = None,
    max_retries: int = MAX_RETRIES,
    backoff_s: float = BACKOFF_S,
    validate: "Optional[Callable[[List[R]], bool]]" = None,
) -> "List[R]":
    """Map *fn* over *items*, optionally on a fault-tolerant fork pool.

    Results come back in input order regardless of ``n_jobs`` and of
    any recovery that happened along the way; see the module docstring
    for the determinism, pickling, and failure-semantics guarantees.

    Parameters
    ----------
    fn, items, n_jobs:
        As before; ``n_jobs in (None, 1)`` runs serially in-process.
    timeout_s:
        Per-chunk deadline for hang detection; ``None`` (default)
        disables it -- crash detection is always on.
    max_retries:
        Failed-attempt budget per chunk before it degrades to serial
        re-execution in the parent.
    backoff_s:
        Base of the deterministic exponential backoff between retries.
    validate:
        Optional predicate over one chunk's result list; returning
        ``False`` marks the attempt failed (retry, then serial). When
        fault injection is active and no validator is given, NaN
        contamination is rejected by default so the injected-corruption
        recovery path is closed out of the box.

    Raises
    ------
    WorkerFailureError
        Only when a chunk failed validation even after serial
        re-execution by the parent; ``diagnostics`` lists each failed
        chunk's attempt history.
    """
    items = list(items)
    if max_retries < 0:
        raise SimulationError(f"max_retries must be >= 0, got {max_retries}")
    if timeout_s is not None and timeout_s <= 0:
        raise SimulationError(f"timeout_s must be positive, got {timeout_s}")
    jobs = min(resolve_n_jobs(n_jobs), len(items))
    if jobs <= 1:
        return [fn(item) for item in items]
    global _WORK
    if _WORK is not None:
        # Nested call from inside a worker: run serially rather than
        # oversubscribing with a pool-per-worker.
        _serial_fallback_observed("nested parallel_map call inside a worker")
        return [fn(item) for item in items]
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:
        _serial_fallback_observed("no 'fork' start method on this platform")
        return [fn(item) for item in items]
    if validate is None and faultinject.active_plan() is not None:
        validate = lambda results: not faultinject.nan_contaminated(results)
    chunks = _chunk_indices(len(items), jobs * 4)
    _WORK = (fn, items)
    pool = None
    try:
        pool = _FaultTolerantPool(
            context, jobs, chunks, timeout_s, max_retries, backoff_s, validate
        )
        payloads, degraded, states = pool.run()
        pool.shutdown()
        pool = None
        # Graceful degradation: re-execute exhausted chunks serially in
        # the parent (fault injection never fires here), still under a
        # fresh registry so the final merge stays in chunk order.
        bad: "List[Dict[str, Any]]" = []
        for chunk_id in degraded:
            state = states[chunk_id]
            payload = _execute_chunk(state.indices, state.failures)
            if validate is not None and not validate(payload[0]):
                state.history.append("serial re-execution rejected by validation")
                bad.append(
                    {
                        "chunk": [state.indices.start, state.indices.stop],
                        "failures": state.failures,
                        "history": state.history,
                    }
                )
                continue
            payloads[chunk_id] = payload
        if bad:
            raise WorkerFailureError(
                f"{len(bad)} chunk(s) failed validation even after serial "
                "re-execution",
                diagnostics={"chunks": bad},
            )
    finally:
        if pool is not None:
            pool.shutdown()
        _WORK = None
    parent = obs_runtime.active()
    results: "List[R]" = []
    for chunk_id in range(len(chunks)):
        chunk_results, metrics_snapshot, trace_spans = payloads[chunk_id]
        results.extend(chunk_results)
        if metrics_snapshot is not None and parent.metrics is not None:
            parent.metrics.merge_dict(metrics_snapshot)
        if trace_spans is not None and parent.tracer is not None:
            parent.tracer.adopt(trace_spans)
    return results
