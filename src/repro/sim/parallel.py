"""Process-pool fan-out for independent simulation work.

Replications in :mod:`repro.sim.batch` are embarrassingly parallel:
every run is fully determined by its seed, and runs share no state.
:func:`parallel_map` exploits that with a ``fork``-based process pool
while preserving the serial semantics exactly:

- **Determinism** -- each item is evaluated by exactly one call of the
  mapped function, and results are returned in input order. A function
  whose output depends only on its item (e.g. a seeded simulation)
  therefore produces output identical to the serial map, byte for byte,
  for every ``n_jobs``.
- **No pickling of work** -- the function and item list are published in
  a module global *before* the fork, so workers inherit them through the
  process image. Closures over local factories (how
  :func:`repro.sim.batch.run_replications` builds its per-seed work)
  need no pickle support; only chunk indices and results cross the
  process boundary.
- **Chunked dispatch** -- items are split into contiguous index chunks
  (about four per worker) to amortize dispatch overhead while keeping
  the pool load-balanced when per-item runtimes vary.

``n_jobs`` follows the common convention: ``None`` or ``1`` runs
serially in-process, ``k > 1`` uses ``k`` workers, ``-1`` uses all
available cores, and ``0`` is rejected. Platforms without the ``fork``
start method (and nested calls from inside a worker) degrade to the
serial path -- same results, no pool.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any, Callable, List, Optional, Sequence, Tuple, TypeVar

from repro.errors import SimulationError
from repro.obs import runtime as obs_runtime
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

T = TypeVar("T")
R = TypeVar("R")

#: Work shared with forked workers: ``(fn, items)`` published before the
#: fork so the pool inherits it; ``None`` whenever no pool is running.
_WORK: "Optional[tuple]" = None


def resolve_n_jobs(n_jobs: Optional[int]) -> int:
    """Normalize an ``n_jobs`` request to a positive worker count.

    ``None`` means serial (1). Negative values request all available
    cores (``os.cpu_count()``). Zero is a usage error.
    """
    if n_jobs is None:
        return 1
    n_jobs = int(n_jobs)
    if n_jobs == 0:
        raise SimulationError("n_jobs must not be 0; use None or 1 for serial")
    if n_jobs < 0:
        return max(1, os.cpu_count() or 1)
    return n_jobs


def _chunk_indices(n_items: int, n_chunks: int) -> "List[range]":
    """Split ``range(n_items)`` into contiguous, near-equal chunks."""
    n_chunks = max(1, min(n_chunks, n_items))
    base, extra = divmod(n_items, n_chunks)
    chunks: List[range] = []
    start = 0
    for c in range(n_chunks):
        size = base + (1 if c < extra else 0)
        chunks.append(range(start, start + size))
        start += size
    return chunks


def _run_chunk(indices: "range") -> "Tuple[List[Any], Optional[dict], Optional[list]]":
    """Evaluate one chunk of the published work (runs in a worker).

    When the forked-in parent context carries instrumentation, the
    chunk runs under a *fresh* worker registry/tracer whose snapshot is
    shipped back beside the results; the parent merges snapshots in
    chunk (= input) order, so the merged registry is bit-for-bit the
    registry a serial run would have built (wall-clock instruments are
    flagged ``profiling`` and exempt from that identity).
    """
    fn, items = _WORK
    parent = obs_runtime.active()
    if not parent.enabled:
        return [fn(items[i]) for i in indices], None, None
    registry = MetricsRegistry() if parent.metrics is not None else None
    tracer = (
        Tracer(epoch=parent.tracer.epoch) if parent.tracer is not None else None
    )
    with obs_runtime.instrument(metrics=registry, tracer=tracer):
        results = [fn(items[i]) for i in indices]
    return (
        results,
        registry.to_dict() if registry is not None else None,
        tracer.to_dicts() if tracer is not None else None,
    )


def parallel_map(
    fn: "Callable[[T], R]",
    items: "Sequence[T]",
    n_jobs: Optional[int] = None,
) -> "List[R]":
    """Map *fn* over *items*, optionally on a fork-based process pool.

    Results come back in input order regardless of ``n_jobs``; see the
    module docstring for the determinism and pickling guarantees.
    """
    items = list(items)
    jobs = min(resolve_n_jobs(n_jobs), len(items))
    if jobs <= 1:
        return [fn(item) for item in items]
    global _WORK
    if _WORK is not None:
        # Nested call from inside a worker: run serially rather than
        # oversubscribing with a pool-per-worker.
        return [fn(item) for item in items]
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - fork exists on posix
        return [fn(item) for item in items]
    _WORK = (fn, items)
    try:
        chunks = _chunk_indices(len(items), jobs * 4)
        with context.Pool(processes=jobs) as pool:
            chunk_results = pool.map(_run_chunk, chunks)
    finally:
        _WORK = None
    parent = obs_runtime.active()
    results: "List[R]" = []
    for chunk, metrics_snapshot, trace_spans in chunk_results:
        results.extend(chunk)
        if metrics_snapshot is not None and parent.metrics is not None:
            parent.metrics.merge_dict(metrics_snapshot)
        if trace_spans is not None and parent.tracer is not None:
            parent.tracer.adopt(trace_spans)
    return results
