"""Process-pool fan-out for independent simulation work.

Replications in :mod:`repro.sim.batch` are embarrassingly parallel:
every run is fully determined by its seed, and runs share no state.
:func:`parallel_map` exploits that with a ``fork``-based process pool
while preserving the serial semantics exactly:

- **Determinism** -- each item is evaluated by exactly one call of the
  mapped function, and results are returned in input order. A function
  whose output depends only on its item (e.g. a seeded simulation)
  therefore produces output identical to the serial map, byte for byte,
  for every ``n_jobs``.
- **No pickling of work** -- the function and item list are published in
  a module global *before* the fork, so workers inherit them through the
  process image. Closures over local factories (how
  :func:`repro.sim.batch.run_replications` builds its per-seed work)
  need no pickle support; only chunk indices and results cross the
  process boundary.
- **Chunked dispatch** -- items are split into contiguous index chunks
  (about four per worker) to amortize dispatch overhead while keeping
  the pool load-balanced when per-item runtimes vary.

``n_jobs`` follows the common convention: ``None`` or ``1`` runs
serially in-process, ``k > 1`` uses ``k`` workers, ``-1`` uses all
available cores, and ``0`` is rejected. Platforms without the ``fork``
start method (and nested calls from inside a worker) degrade to the
serial path -- same results, no pool.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any, Callable, List, Optional, Sequence, TypeVar

from repro.errors import SimulationError

T = TypeVar("T")
R = TypeVar("R")

#: Work shared with forked workers: ``(fn, items)`` published before the
#: fork so the pool inherits it; ``None`` whenever no pool is running.
_WORK: "Optional[tuple]" = None


def resolve_n_jobs(n_jobs: Optional[int]) -> int:
    """Normalize an ``n_jobs`` request to a positive worker count.

    ``None`` means serial (1). Negative values request all available
    cores (``os.cpu_count()``). Zero is a usage error.
    """
    if n_jobs is None:
        return 1
    n_jobs = int(n_jobs)
    if n_jobs == 0:
        raise SimulationError("n_jobs must not be 0; use None or 1 for serial")
    if n_jobs < 0:
        return max(1, os.cpu_count() or 1)
    return n_jobs


def _chunk_indices(n_items: int, n_chunks: int) -> "List[range]":
    """Split ``range(n_items)`` into contiguous, near-equal chunks."""
    n_chunks = max(1, min(n_chunks, n_items))
    base, extra = divmod(n_items, n_chunks)
    chunks: List[range] = []
    start = 0
    for c in range(n_chunks):
        size = base + (1 if c < extra else 0)
        chunks.append(range(start, start + size))
        start += size
    return chunks


def _run_chunk(indices: "range") -> "List[Any]":
    """Evaluate one chunk of the published work (runs in a worker)."""
    fn, items = _WORK
    return [fn(items[i]) for i in indices]


def parallel_map(
    fn: "Callable[[T], R]",
    items: "Sequence[T]",
    n_jobs: Optional[int] = None,
) -> "List[R]":
    """Map *fn* over *items*, optionally on a fork-based process pool.

    Results come back in input order regardless of ``n_jobs``; see the
    module docstring for the determinism and pickling guarantees.
    """
    items = list(items)
    jobs = min(resolve_n_jobs(n_jobs), len(items))
    if jobs <= 1:
        return [fn(item) for item in items]
    global _WORK
    if _WORK is not None:
        # Nested call from inside a worker: run serially rather than
        # oversubscribing with a pool-per-worker.
        return [fn(item) for item in items]
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - fork exists on posix
        return [fn(item) for item in items]
    _WORK = (fn, items)
    try:
        chunks = _chunk_indices(len(items), jobs * 4)
        with context.Pool(processes=jobs) as pool:
            chunk_results = pool.map(_run_chunk, chunks)
    finally:
        _WORK = None
    return [result for chunk in chunk_results for result in chunk]
