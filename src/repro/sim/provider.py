"""The simulated service provider (SP).

A thin state holder around a :class:`~repro.dpm.service_provider.
ServiceProvider` description: current mode, an optional in-flight mode
switch, and an in-service flag. All event scheduling lives in the
:class:`~repro.sim.simulator.Simulator`; this class only answers state
questions and draws the random durations.

Timing semantics (matching the CTMDP model exactly):

- a commanded switch ``s -> s'`` takes an exponential time with mean
  ``1/chi[s, s']``; the server stays in mode ``s`` (drawing ``pow(s)``)
  until the switch completes, then pays ``ene(s, s')``;
- a self-switch is instantaneous and free (the paper's
  ``chi[s, s] = infinity``);
- service in an active mode takes an exponential time with mean
  ``1/mu``; because the exponential is memoryless, a mid-service mode
  change to another active mode simply re-draws the remaining service
  time at the new rate.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.dpm.service_provider import ServiceProvider
from repro.errors import SimulationError
from repro.sim.distributions import ExponentialService, ServiceDistribution


class SimulatedProvider:
    """Run-time SP state for one simulation.

    ``service_distribution`` defaults to the model's exponential
    assumption; swapping it (see :mod:`repro.sim.distributions`) keeps
    the mean ``1/mu`` but changes the variability -- used by the
    robustness ablation. Note that the mid-service re-draw on an
    active-to-active mode change is exact only for the exponential; with
    a single active mode (the paper's setup) the case never arises.
    """

    def __init__(
        self,
        description: ServiceProvider,
        initial_mode: str,
        service_distribution: Optional[ServiceDistribution] = None,
    ) -> None:
        self.description = description
        description.index_of(initial_mode)  # validates the name
        self.mode = initial_mode
        self.switch_target: Optional[str] = None
        self.is_serving = False
        self.service_distribution = (
            service_distribution
            if service_distribution is not None
            else ExponentialService()
        )

    @property
    def is_switching(self) -> bool:
        return self.switch_target is not None

    @property
    def is_active(self) -> bool:
        return self.description.is_active(self.mode)

    def power_now(self) -> float:
        """Instantaneous power draw (mode power; the model charges the
        source mode's power during a switch)."""
        return self.description.power_rate(self.mode)

    def draw_switch_time(self, target: str, rng: np.random.Generator) -> float:
        """Exponential switch latency to *target* (0 for a self-switch)."""
        if target == self.mode:
            return 0.0
        return float(rng.exponential(self.description.switching_time(self.mode, target)))

    def draw_service_time(self, rng: np.random.Generator) -> float:
        """Service duration at the current mode's mean ``1/mu``."""
        mu = self.description.service_rate(self.mode)
        if mu <= 0:
            raise SimulationError(f"mode {self.mode!r} cannot serve (mu = 0)")
        return self.service_distribution.sample(1.0 / mu, rng)

    def begin_switch(self, target: str) -> None:
        if target == self.mode:
            raise SimulationError("self-switches complete instantaneously")
        self.switch_target = target

    def cancel_switch(self) -> None:
        self.switch_target = None

    def finish_switch(self) -> float:
        """Complete the in-flight switch; returns the energy paid."""
        if self.switch_target is None:
            raise SimulationError("no switch in flight")
        energy = self.description.switching_energy(self.mode, self.switch_target)
        self.mode = self.switch_target
        self.switch_target = None
        return energy
