"""Event-driven simulator for power-managed systems.

The paper's experiments run "an event-driven simulator for simulating
the real-time operation of a portable system together with the power
management policy" (Section V). This subpackage is that simulator:

- :mod:`repro.sim.engine` -- a generic discrete-event core (event
  calendar with cancellation).
- :mod:`repro.sim.rng` -- named, independently seeded random streams so
  that policies are compared on identical arrival realizations.
- :mod:`repro.sim.workload` -- arrival processes: Poisson (the paper's
  SR), piecewise-rate, MMPP (bursty), and trace replay.
- :mod:`repro.sim.provider` -- the simulated server: mode switches with
  exponential latencies and switching energy, exponential service.
- :mod:`repro.sim.queue_sim` -- the FIFO request queue with loss.
- :mod:`repro.sim.stats` -- time-weighted statistics (power, queue
  length, waiting times, losses, PM activity).
- :mod:`repro.sim.simulator` -- the orchestrator tying SR, SQ, SP and
  PM together; the PM is invoked asynchronously on every system state
  change, exactly as the paper advocates.
- :mod:`repro.sim.batch` -- replicated runs with confidence intervals.
- :mod:`repro.sim.parallel` -- process-pool fan-out for replications
  (``n_jobs=``), byte-identical to serial runs.
"""

from repro.sim.batch import MetricSummary, compare_policies, run_replications, summarize
from repro.sim.parallel import parallel_map, resolve_n_jobs
from repro.sim.distributions import (
    DeterministicService,
    ErlangService,
    ExponentialService,
    HyperexponentialService,
    ServiceDistribution,
)
from repro.sim.engine import EventScheduler
from repro.sim.queue_sim import FIFORequestQueue
from repro.sim.rng import RandomStreams
from repro.sim.simulator import SimulationResult, Simulator, simulate
from repro.sim.stats import StatsCollector
from repro.sim.trace_io import load_result, load_trace, save_result, save_trace
from repro.sim.workload import (
    MMPPProcess,
    PiecewiseRateProcess,
    PoissonProcess,
    TraceArrivals,
)

__all__ = [
    "DeterministicService",
    "ErlangService",
    "EventScheduler",
    "ExponentialService",
    "FIFORequestQueue",
    "HyperexponentialService",
    "MMPPProcess",
    "MetricSummary",
    "PiecewiseRateProcess",
    "PoissonProcess",
    "RandomStreams",
    "ServiceDistribution",
    "SimulationResult",
    "Simulator",
    "StatsCollector",
    "TraceArrivals",
    "compare_policies",
    "load_result",
    "load_trace",
    "parallel_map",
    "resolve_n_jobs",
    "run_replications",
    "save_result",
    "save_trace",
    "simulate",
    "summarize",
]
