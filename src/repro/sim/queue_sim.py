"""The simulated FIFO request queue (SQ).

Requests are served in FIFO order (Section III); the *system capacity*
is ``Q``: an arrival is lost when ``Q`` requests are already present
(waiting plus in service), matching the model's stable state ``q_Q``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

from repro.errors import SimulationError


@dataclass
class Request:
    """One request's lifetime timestamps."""

    request_id: int
    arrival_time: float
    service_start_time: Optional[float] = None
    departure_time: Optional[float] = None


class FIFORequestQueue:
    """FIFO queue with loss; holds requests not yet *completed*.

    ``occupancy`` counts waiting plus in-service requests (the model's
    ``q_i`` convention where the in-service request is included).
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise SimulationError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._waiting: Deque[Request] = deque()
        self._in_service: Optional[Request] = None
        self._next_id = 0
        self.n_accepted = 0
        self.n_lost = 0

    @property
    def waiting_count(self) -> int:
        """Requests queued but not in service."""
        return len(self._waiting)

    @property
    def occupancy(self) -> int:
        """Waiting plus in-service requests (the model's ``q_i``)."""
        return len(self._waiting) + (1 if self._in_service is not None else 0)

    @property
    def in_service(self) -> Optional[Request]:
        return self._in_service

    def is_full(self) -> bool:
        return self.occupancy >= self.capacity

    def is_empty(self) -> bool:
        return self.occupancy == 0

    def offer(self, arrival_time: float) -> Optional[Request]:
        """Admit an arrival, or drop it (returning ``None``) when full."""
        if self.is_full():
            self.n_lost += 1
            return None
        request = Request(request_id=self._next_id, arrival_time=arrival_time)
        self._next_id += 1
        self._waiting.append(request)
        self.n_accepted += 1
        return request

    def start_service(self, time: float) -> Request:
        """Move the head-of-line request into service."""
        if self._in_service is not None:
            raise SimulationError("a request is already in service")
        if not self._waiting:
            raise SimulationError("cannot start service on an empty queue")
        request = self._waiting.popleft()
        request.service_start_time = time
        self._in_service = request
        return request

    def complete_service(self, time: float) -> Request:
        """Finish the in-service request and return it."""
        if self._in_service is None:
            raise SimulationError("no request is in service")
        request = self._in_service
        request.departure_time = time
        self._in_service = None
        return request

    def pending_requests(self) -> "list[Request]":
        """Requests still in the system (in-service first, then FIFO)."""
        pending = []
        if self._in_service is not None:
            pending.append(self._in_service)
        pending.extend(self._waiting)
        return pending

    def requeue_in_service(self) -> Request:
        """Abort the in-service request back to the head of the line.

        Used by the ``"preempt"`` busy-powerdown semantics: the
        interrupted request keeps its arrival time and FIFO position.
        """
        if self._in_service is None:
            raise SimulationError("no request is in service")
        request = self._in_service
        request.service_start_time = None
        request.departure_time = None
        self._in_service = None
        self._waiting.appendleft(request)
        return request
