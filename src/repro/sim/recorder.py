"""Timeline recording for simulation runs.

A :class:`TimelineRecorder` passed to the simulator captures what
happened when:

- *mode segments* -- contiguous intervals the SP spent in each mode;
- *queue steps* -- the piecewise-constant occupancy signal;
- *events* -- the raw (time, kind) stream;
- *request lifecycles* -- arrival / service-start / departure triples.

Useful for debugging policies (why did it sleep there?), for plotting
power/occupancy timelines, and for computing per-interval energy with
:meth:`TimelineRecorder.energy_between` -- all without touching the
aggregate statistics path.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.dpm.service_provider import ServiceProvider
from repro.errors import SimulationError


@dataclass(frozen=True)
class ModeSegment:
    """The SP occupied *mode* during ``[start, end)``."""

    mode: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class RequestRecord:
    """One request's lifecycle timestamps (None = never happened)."""

    request_id: int
    arrival_time: float
    service_start_time: Optional[float]
    departure_time: Optional[float]
    lost: bool


@dataclass
class TimelineRecorder:
    """Collects the run's timeline; attach via ``Simulator(recorder=...)``."""

    events: "List[Tuple[float, str]]" = field(default_factory=list)
    queue_steps: "List[Tuple[float, int]]" = field(default_factory=list)
    requests: "List[RequestRecord]" = field(default_factory=list)
    _mode_segments: "List[ModeSegment]" = field(default_factory=list)
    _current_mode: Optional[str] = None
    _mode_since: float = 0.0
    _switch_energies: "List[Tuple[float, float]]" = field(default_factory=list)
    _finalized: bool = False
    _segment_starts: "List[float]" = field(default_factory=list)

    # -- hooks driven by the simulator -----------------------------------------

    def record_event(self, time: float, kind: str) -> None:
        self.events.append((time, kind))

    def record_mode(self, time: float, mode: str) -> None:
        if self._current_mode is not None and mode != self._current_mode:
            self._mode_segments.append(
                ModeSegment(self._current_mode, self._mode_since, time)
            )
            self._mode_since = time
        elif self._current_mode is None:
            self._mode_since = time
        self._current_mode = mode

    def record_queue(self, time: float, occupancy: int) -> None:
        if not self.queue_steps or self.queue_steps[-1][1] != occupancy:
            self.queue_steps.append((time, occupancy))

    def record_switch_energy(self, time: float, joules: float) -> None:
        self._switch_energies.append((time, joules))

    def record_request(self, record: RequestRecord) -> None:
        self.requests.append(record)

    def finalize(self, end_time: float) -> None:
        if self._current_mode is not None:
            self._mode_segments.append(
                ModeSegment(self._current_mode, self._mode_since, end_time)
            )
        self._segment_starts = [s.start for s in self._mode_segments]
        self._finalized = True

    # -- queries ---------------------------------------------------------------

    @property
    def mode_segments(self) -> "List[ModeSegment]":
        if not self._finalized:
            raise SimulationError("timeline not finalized; run the simulation first")
        return list(self._mode_segments)

    def mode_at(self, time: float) -> str:
        """The SP mode at absolute *time* (binary search over segments)."""
        if not self._finalized:
            raise SimulationError("timeline not finalized; run the simulation first")
        segments = self._mode_segments
        if not segments:
            raise SimulationError(
                "no mode segments recorded; the simulation saw no SP activity"
            )
        if time < segments[0].start:
            raise SimulationError(
                f"time {time:g} precedes the recorded timeline "
                f"(starts at {segments[0].start:g})"
            )
        if time >= segments[-1].end:
            return segments[-1].mode
        idx = bisect.bisect_right(self._segment_starts, time) - 1
        segment = segments[idx]
        if time >= segment.end:
            # Segments are contiguous in normal operation, but report a
            # genuine gap honestly instead of claiming the query time
            # precedes the run.
            raise SimulationError(
                f"time {time:g} falls in a gap of the recorded timeline "
                f"([{segment.end:g}, {segments[idx + 1].start:g}))"
            )
        return segment.mode

    def occupancy_at(self, time: float) -> int:
        """Queue occupancy at absolute *time* (0 before the first step).

        Binary search over the step signal: O(log n) per query. The
        sentinel pairs ``(time, inf)`` after any recorded ``(time, k)``,
        so steps exactly at *time* are included, matching the previous
        linear scan's ``step_time <= time`` semantics.
        """
        idx = bisect.bisect_right(self.queue_steps, (time, float("inf")))
        if idx == 0:
            return 0
        return self.queue_steps[idx - 1][1]

    def energy_between(
        self, provider: ServiceProvider, start: float, end: float
    ) -> float:
        """Energy consumed in ``[start, end)``: mode power plus switches."""
        if end < start:
            raise SimulationError(f"empty interval [{start:g}, {end:g})")
        total = 0.0
        for segment in self.mode_segments:
            overlap = min(segment.end, end) - max(segment.start, start)
            if overlap > 0:
                total += provider.power_rate(segment.mode) * overlap
        total += sum(j for t, j in self._switch_energies if start <= t < end)
        return total

    def busy_fraction(self, mode: str) -> float:
        """Fraction of recorded time spent in *mode*."""
        segments = self.mode_segments
        if not segments:
            return 0.0
        total = segments[-1].end - segments[0].start
        in_mode = sum(s.duration for s in segments if s.mode == mode)
        return in_mode / total if total > 0 else 0.0
