"""Flat, versioned, checksummed policy lookup artifacts.

A solved policy leaves the solver as a :class:`~repro.ctmdp.policy.Policy`
bound to a model instance -- the wrong shape for a serving process that
must answer lookups for hours, survive restarts, and reject corrupt
state. This module compiles an
:class:`~repro.dpm.optimizer.OptimizationResult` into a self-describing
document (schema ``repro-policy/v1``):

- **Flat.** States are encoded as ``(mode, kind, index)`` triples in
  model state order with a parallel action list; loading rebuilds an
  O(1) lookup table with no solver machinery on the serve path.
- **Versioned.** A monotonically increasing ``version`` plus the solved
  arrival rate, weight, solver, and backend -- enough to answer "what
  exactly is this process serving?" from the file alone.
- **Checksummed.** A SHA-256 over the canonical JSON of everything
  else. A torn write, a flipped bit, or a hand-edited file fails the
  check with a typed :class:`~repro.errors.ArtifactIntegrityError`
  before any action is ever served from it.
- **Admitted.** :func:`validate_artifact` is the PR 5 admission gate
  repurposed as the artifact-validation step of the serve pipeline: the
  encoded model configuration must fingerprint-match the serving model,
  pass :func:`repro.robust.admission.admit_model`, and the policy must
  validate against the rebuilt CTMDP. Inadmissible artifacts raise
  :class:`~repro.errors.ArtifactRejectedError` -- they are never served.

:class:`ArtifactStore` owns the on-disk lifecycle: saves are atomic
(temp file in the same directory, fsync, ``os.replace``, then a
best-effort directory fsync), so a SIGKILL at any instant leaves either
the previous artifact or the new one -- never a torn file. Leftover
temp files from a crash mid-swap are swept on the next save/load.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.dpm.service_queue import QueueState, STABLE, TRANSFER
from repro.dpm.system import PowerManagedSystemModel, SystemState
from repro.errors import (
    ArtifactIntegrityError,
    ArtifactRejectedError,
    ArtifactSchemaError,
    InvalidModelError,
    InvalidPolicyError,
    ServeRequestError,
)
from repro.obs.runtime import active as obs_active

#: Schema tag stamped on every artifact document.
ARTIFACT_SCHEMA = "repro-policy/v1"

PathLike = Union[str, Path]


def _canonical_json(payload: "Dict[str, Any]") -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _checksum(payload: "Dict[str, Any]") -> str:
    body = {k: v for k, v in payload.items() if k != "checksum"}
    return hashlib.sha256(_canonical_json(body).encode("utf-8")).hexdigest()


def provider_fingerprint(provider) -> str:
    """SHA-256 of the provider's full numeric structure.

    Two providers fingerprint equal iff their mode names, switching
    rates, service rates, power rates, switching energies, and
    self-switch stand-in agree exactly (shortest-repr float identity) --
    the condition under which a policy table transfers between them.
    """
    modes = list(provider.modes)
    doc = {
        "modes": modes,
        "switching_rates": [
            [provider.switching_rate(s, d) if s != d else 0.0 for d in modes]
            for s in modes
        ],
        "service_rates": [provider.service_rate(m) for m in modes],
        "power": [provider.power_rate(m) for m in modes],
        "switching_energy": [
            [provider.switching_energy(s, d) if s != d else 0.0 for d in modes]
            for s in modes
        ],
        "self_switch_rate": provider.self_switch_rate,
    }
    return hashlib.sha256(_canonical_json(doc).encode("utf-8")).hexdigest()


def model_fingerprint(model: PowerManagedSystemModel) -> str:
    """Fingerprint of everything about *model* except the arrival rate.

    The arrival rate is deliberately excluded: re-rated siblings (the
    drift re-solve path) share a fingerprint, and the artifact carries
    its exact solved rate separately.
    """
    doc = {
        "provider": provider_fingerprint(model.provider),
        "capacity": int(model.capacity),
        "include_transfer_states": bool(model.include_transfer_states),
    }
    return hashlib.sha256(_canonical_json(doc).encode("utf-8")).hexdigest()


class PolicyArtifact:
    """An immutable compiled policy table plus its provenance.

    Construct via :func:`compile_artifact` (from a solved result) or
    :meth:`from_document` (from a loaded JSON document); both leave the
    instance fully validated at the structural level. Admission-level
    validation against a serving model is :func:`validate_artifact`.
    """

    __slots__ = (
        "version",
        "rate",
        "weight",
        "solver",
        "backend",
        "capacity",
        "include_transfer_states",
        "fingerprint",
        "states",
        "actions",
        "metrics",
        "checksum",
        "_table",
    )

    def __init__(
        self,
        version: int,
        rate: float,
        weight: float,
        solver: str,
        backend: str,
        capacity: int,
        include_transfer_states: bool,
        fingerprint: str,
        states: "List[Tuple[str, str, int]]",
        actions: "List[str]",
        metrics: "Dict[str, float]",
        checksum: "Optional[str]" = None,
    ) -> None:
        if version < 1:
            raise ArtifactSchemaError(f"artifact version must be >= 1, got {version}")
        if len(states) != len(actions):
            raise ArtifactSchemaError(
                f"{len(states)} states but {len(actions)} actions"
            )
        if not states:
            raise ArtifactSchemaError("artifact has an empty policy table")
        self.version = int(version)
        self.rate = float(rate)
        self.weight = float(weight)
        self.solver = str(solver)
        self.backend = str(backend)
        self.capacity = int(capacity)
        self.include_transfer_states = bool(include_transfer_states)
        self.fingerprint = str(fingerprint)
        self.states = [
            (str(m), str(k), int(i)) for m, k, i in states
        ]
        self.actions = [str(a) for a in actions]
        self.metrics = {str(k): float(v) for k, v in metrics.items()}
        table: "Dict[Tuple[str, str, int], str]" = {}
        for key, action in zip(self.states, self.actions):
            if key in table:
                raise ArtifactSchemaError(f"duplicate state {key!r} in artifact")
            table[key] = action
        self._table = table
        body = self._body()
        expected = _checksum(body)
        if checksum is None:
            self.checksum = expected
        else:
            if checksum != expected:
                raise ArtifactIntegrityError(
                    "artifact checksum mismatch: stored "
                    f"{str(checksum)[:12]}..., computed {expected[:12]}... "
                    "-- the file is corrupt or was edited by hand"
                )
            self.checksum = checksum

    # -- (de)serialization ----------------------------------------------------

    def _body(self) -> "Dict[str, Any]":
        return {
            "schema": ARTIFACT_SCHEMA,
            "version": self.version,
            "model": {
                "arrival_rate": self.rate,
                "weight": self.weight,
                "solver": self.solver,
                "backend": self.backend,
                "capacity": self.capacity,
                "include_transfer_states": self.include_transfer_states,
                "fingerprint": self.fingerprint,
            },
            "states": [list(s) for s in self.states],
            "actions": list(self.actions),
            "metrics": self.metrics,
        }

    def to_document(self) -> "Dict[str, Any]":
        doc = self._body()
        doc["checksum"] = self.checksum
        return doc

    @classmethod
    def from_document(cls, doc: "Dict[str, Any]") -> "PolicyArtifact":
        """Parse and structurally validate a loaded artifact document.

        Integrity failures (checksum) raise
        :class:`~repro.errors.ArtifactIntegrityError`; structural ones
        (missing fields, wrong schema) raise
        :class:`~repro.errors.ArtifactSchemaError`.
        """
        if not isinstance(doc, dict):
            raise ArtifactSchemaError(
                f"artifact document must be an object, got {type(doc).__name__}"
            )
        if doc.get("schema") != ARTIFACT_SCHEMA:
            raise ArtifactSchemaError(
                f"unknown artifact schema {doc.get('schema')!r}; expected "
                f"{ARTIFACT_SCHEMA!r}"
            )
        if "checksum" not in doc:
            raise ArtifactSchemaError("artifact document has no checksum")
        try:
            model = doc["model"]
            return cls(
                version=doc["version"],
                rate=model["arrival_rate"],
                weight=model["weight"],
                solver=model["solver"],
                backend=model["backend"],
                capacity=model["capacity"],
                include_transfer_states=model["include_transfer_states"],
                fingerprint=model["fingerprint"],
                states=[tuple(s) for s in doc["states"]],
                actions=doc["actions"],
                metrics=doc["metrics"],
                checksum=doc["checksum"],
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ArtifactSchemaError(
                f"artifact document is malformed: {exc!r}"
            ) from exc

    # -- the serve-path lookup ------------------------------------------------

    def action_for(self, mode: str, in_transfer: bool, count: int) -> str:
        """The commanded mode for a joint state, with boundary clamping.

        ``count`` is the occupancy for stable states and the waiting
        count during a transfer; both clamp at the solved capacity,
        mirroring :func:`repro.policies.optimal.view_to_system_state`.
        Unknown modes or impossible (mode, transfer) combinations raise
        a typed :class:`~repro.errors.ServeRequestError` -- the table
        never guesses.
        """
        if count < 0:
            raise ServeRequestError(f"occupancy must be >= 0, got {count}")
        if in_transfer:
            key = (mode, TRANSFER, min(int(count) + 1, self.capacity))
        else:
            key = (mode, STABLE, min(int(count), self.capacity))
        action = self._table.get(key)
        if action is None:
            raise ServeRequestError(
                f"no joint state for mode={mode!r}, "
                f"transfer={in_transfer}, count={count} in the served "
                "policy (unknown mode, or a transfer in an inactive mode)"
            )
        return action

    def assignment(self) -> "Dict[SystemState, str]":
        """The policy table keyed by model :class:`SystemState` values."""
        return {
            SystemState(mode, QueueState(kind, index)): action
            for (mode, kind, index), action in self._table.items()
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PolicyArtifact(version={self.version}, rate={self.rate:g}, "
            f"weight={self.weight:g}, states={len(self.states)})"
        )


def compile_artifact(
    model: PowerManagedSystemModel,
    result,
    version: int = 1,
    solver: str = "policy_iteration",
    backend: str = "auto",
) -> PolicyArtifact:
    """Compile a solved *result* on *model* into a lookup artifact.

    Rejects (with typed errors) the outputs a broken solver could
    produce: randomized policies, tables missing states, and non-finite
    metrics (a NaN gain is a solver failure, not a servable policy).
    """
    from repro.ctmdp.policy import Policy

    if not isinstance(result.policy, Policy):
        raise ArtifactRejectedError(
            "only deterministic policies are servable; got "
            f"{type(result.policy).__name__}"
        )
    assignment = result.policy.as_dict()
    states: "List[Tuple[str, str, int]]" = []
    actions: "List[str]" = []
    for state in model.states:
        action = assignment.get(state)
        if action is None:
            raise ArtifactRejectedError(
                f"solved policy misses model state {state!r}"
            )
        states.append((state.mode, state.queue.kind, state.queue.index))
        actions.append(str(action))
    metrics = {
        "average_power": result.metrics.average_power,
        "average_queue_length": result.metrics.average_queue_length,
        "average_waiting_time": result.metrics.average_waiting_time,
        "loss_rate": result.metrics.loss_rate,
    }
    for name, value in metrics.items():
        if not math.isfinite(value):
            raise ArtifactRejectedError(
                f"solved metrics are non-finite ({name} = {value!r}); "
                "refusing to compile a policy whose evaluation failed"
            )
    return PolicyArtifact(
        version=version,
        rate=model.requestor.rate,
        weight=result.weight if result.weight is not None else 0.0,
        solver=solver,
        backend=backend,
        capacity=model.capacity,
        include_transfer_states=model.include_transfer_states,
        fingerprint=model_fingerprint(model),
        states=states,
        actions=actions,
        metrics=metrics,
    )


def validate_artifact(
    artifact: PolicyArtifact,
    model: PowerManagedSystemModel,
    level: str = "standard",
) -> PowerManagedSystemModel:
    """Admit *artifact* for serving against *model*; returns the rated model.

    The artifact-validation step of the serve pipeline (DESIGN §13):

    1. the artifact's model fingerprint must match *model* (same
       provider numbers, capacity, transfer-state choice);
    2. the model re-rated to the artifact's solved rate must pass the
       admission gate at *level* (verdict ``ok`` or ``repaired``);
    3. the policy table must validate against the rebuilt CTMDP (every
       state covered, every action available in its state);
    4. the stored metrics must be finite.

    Any failure raises :class:`~repro.errors.ArtifactRejectedError`
    (carrying the admission report when one exists); success returns
    the re-rated model so callers can reuse the build.
    """
    from repro.dpm.adaptive import rated_model
    from repro.robust.admission import admit_model

    ins = obs_active()
    metrics = ins.metrics if ins.enabled else None
    with ins.span("serve.validate_artifact", version=artifact.version):
        if artifact.fingerprint != model_fingerprint(model):
            if metrics is not None:
                metrics.counter("serve.artifact.rejected").inc()
            raise ArtifactRejectedError(
                "artifact was compiled for a different model "
                "(provider/capacity fingerprint mismatch); refusing to "
                "serve it"
            )
        for name, value in artifact.metrics.items():
            if not math.isfinite(value):
                if metrics is not None:
                    metrics.counter("serve.artifact.rejected").inc()
                raise ArtifactRejectedError(
                    f"artifact metrics are non-finite ({name} = {value!r})"
                )
        try:
            rated = rated_model(model, artifact.rate)
        except InvalidModelError as exc:
            if metrics is not None:
                metrics.counter("serve.artifact.rejected").inc()
            raise ArtifactRejectedError(
                f"artifact encodes an invalid arrival rate: {exc}"
            ) from exc
        report = admit_model(
            rated,
            level=level,
            weight=artifact.weight,
            raise_on_reject=False,
        )
        if report.verdict == "rejected":
            if metrics is not None:
                metrics.counter("serve.artifact.rejected").inc()
            raise ArtifactRejectedError(
                "artifact's model configuration was rejected by the "
                f"admission gate ({len(report.findings)} finding(s))",
                report=report,
            )
        from repro.ctmdp.policy import Policy

        try:
            mdp = rated.build_ctmdp(artifact.weight)
            Policy(mdp, artifact.assignment())
        except (InvalidPolicyError, InvalidModelError) as exc:
            if metrics is not None:
                metrics.counter("serve.artifact.rejected").inc()
            raise ArtifactRejectedError(
                f"artifact policy does not validate against its model: {exc}"
            ) from exc
        if metrics is not None:
            metrics.counter("serve.artifact.admitted").inc()
        return rated


# -- the on-disk store -------------------------------------------------------


class SimulatedCrash(BaseException):
    """Raised by the test-only crash hook to model a SIGKILL mid-swap.

    Derives from ``BaseException`` so no recovery code path can absorb
    it: whatever partial on-disk state exists when it fires is exactly
    the state a real SIGKILL would leave.
    """


class ArtifactStore:
    """Atomic single-slot artifact storage in a directory.

    The current artifact lives at ``<directory>/policy.json``. Saves
    write a temp file in the same directory, fsync it, ``os.replace``
    it into place, and fsync the directory (best effort), so a crash at
    any instant leaves a loadable last-good artifact. Temp leftovers
    from a crash are swept opportunistically.

    ``crash_point`` is a test hook: set it to ``"after-write"``,
    ``"after-fsync"``, or ``"after-replace"`` and the next save raises
    :class:`SimulatedCrash` at that point, faithfully modeling a kill.
    """

    FILENAME = "policy.json"
    #: Sidecar holding the current artifact's certification report
    #: (schema ``repro-cert/v1``); saved after the artifact itself so a
    #: crash between the two leaves a policy without a certificate --
    #: which the runtime treats as uncertified -- never the reverse.
    CERT_FILENAME = "policy.cert.json"

    def __init__(self, directory: PathLike) -> None:
        self.directory = Path(directory)
        self.path = self.directory / self.FILENAME
        self.cert_path = self.directory / self.CERT_FILENAME
        self.crash_point: "Optional[str]" = None

    def _maybe_crash(self, point: str) -> None:
        if self.crash_point == point:
            raise SimulatedCrash(point)

    def sweep(self) -> int:
        """Remove temp leftovers from crashed swaps; returns the count."""
        removed = 0
        if self.directory.is_dir():
            for leftover in self.directory.glob(self.FILENAME + ".*.tmp"):
                try:
                    leftover.unlink()
                    removed += 1
                except OSError:  # pragma: no cover - racing sweeps
                    pass
        return removed

    def save(self, artifact: PolicyArtifact) -> None:
        """Atomically persist *artifact* as the current policy."""
        ins = obs_active()
        with ins.span("serve.swap", version=artifact.version):
            self.directory.mkdir(parents=True, exist_ok=True)
            self.sweep()
            document = artifact.to_document()
            fd, tmp_name = tempfile.mkstemp(
                dir=self.directory, prefix=self.FILENAME + ".", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w") as handle:
                    json.dump(document, handle, indent=1, sort_keys=True)
                    handle.write("\n")
                    handle.flush()
                    self._maybe_crash("after-write")
                    os.fsync(handle.fileno())
                self._maybe_crash("after-fsync")
                os.replace(tmp_name, self.path)
                self._maybe_crash("after-replace")
            except OSError:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
            try:
                dir_fd = os.open(self.directory, os.O_RDONLY)
                try:
                    os.fsync(dir_fd)
                finally:
                    os.close(dir_fd)
            except OSError:  # pragma: no cover - platform-dependent
                pass
            if ins.enabled and ins.metrics is not None:
                ins.metrics.counter("serve.artifact.saves").inc()

    def load(self) -> "Optional[PolicyArtifact]":
        """The stored artifact, ``None`` when none was ever saved.

        Corruption (unreadable JSON, checksum mismatch) raises
        :class:`~repro.errors.ArtifactIntegrityError`; schema drift
        raises :class:`~repro.errors.ArtifactSchemaError`. Both leave
        the file in place for forensics -- the caller decides whether
        to keep serving its in-memory last-good copy.
        """
        self.sweep()
        ins = obs_active()
        metrics = ins.metrics if ins.enabled else None
        if not self.path.exists():
            return None
        try:
            document = json.loads(self.path.read_text())
        except (OSError, ValueError) as exc:
            if metrics is not None:
                metrics.counter("serve.artifact.load_failures").inc()
            raise ArtifactIntegrityError(
                f"cannot read artifact {self.path}: {exc}"
            ) from exc
        try:
            artifact = PolicyArtifact.from_document(document)
        except ArtifactIntegrityError:
            if metrics is not None:
                metrics.counter("serve.artifact.load_failures").inc()
            raise
        except ArtifactSchemaError:
            if metrics is not None:
                metrics.counter("serve.artifact.load_failures").inc()
            raise
        if metrics is not None:
            metrics.counter("serve.artifact.loads").inc()
        return artifact

    def save_certificate(self, document: "Dict[str, Any]") -> None:
        """Atomically persist a certification document beside the policy.

        Same temp-write/fsync/replace dance as :meth:`save`; callers
        pass ``CertificationReport.to_document()``.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.directory, prefix=self.CERT_FILENAME + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(document, handle, indent=1, sort_keys=True)
                handle.write("\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, self.cert_path)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def load_certificate(self) -> "Optional[Dict[str, Any]]":
        """The stored certificate document, ``None`` when absent.

        Returns the raw document; callers parse and integrity-check it
        with ``CertificationReport.from_document``. An unreadable file
        raises :class:`~repro.errors.ArtifactIntegrityError` -- like a
        corrupt artifact, it is kept on disk for forensics.
        """
        if not self.cert_path.exists():
            return None
        try:
            document = json.loads(self.cert_path.read_text())
        except (OSError, ValueError) as exc:
            raise ArtifactIntegrityError(
                f"cannot read certificate {self.cert_path}: {exc}"
            ) from exc
        if not isinstance(document, dict):
            raise ArtifactIntegrityError(
                f"certificate {self.cert_path} holds "
                f"{type(document).__name__}, not an object"
            )
        return document


def save_artifact(artifact: PolicyArtifact, path: PathLike) -> None:
    """Atomically write *artifact* to an explicit file path."""
    path = Path(path)
    store = ArtifactStore(path.parent)
    # Reuse the store's atomic dance with the custom filename.
    store.path = path
    store.FILENAME = path.name  # type: ignore[misc]
    store.save(artifact)


def load_artifact(path: PathLike) -> PolicyArtifact:
    """Load and structurally validate an artifact from an explicit path.

    Unlike :meth:`ArtifactStore.load`, a missing file is an error here:
    the caller named a specific artifact and should know it is gone.
    """
    path = Path(path)
    store = ArtifactStore(path.parent)
    store.path = path
    store.FILENAME = path.name  # type: ignore[misc]
    artifact = store.load()
    if artifact is None:
        raise ArtifactIntegrityError(f"no artifact at {path}")
    return artifact
