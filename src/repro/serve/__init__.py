"""Self-healing policy-serving runtime (DESIGN §13).

The production story for "millions of users" is serving decisions, not
solving once: a long-lived process answers state→action lookups while
the workload drifts underneath it. This package composes the robustness
substrate built by the earlier layers into a runtime that keeps
answering *correctly* when a re-solve fails, hangs, or produces an
inadmissible policy:

- :mod:`repro.serve.artifact` -- solved policies compiled into flat,
  versioned, checksummed lookup artifacts; the PR 5 admission gate is
  the artifact-validation step, and swaps are atomic
  (write-temp + fsync + rename; crash mid-swap is recoverable).
- :mod:`repro.serve.supervisor` -- the drift-triggered re-solve loop:
  retry with backoff, a circuit breaker that keeps serving on the
  last-good artifact when re-solves keep failing, and atomic hot-swap
  of admitted results.
- :mod:`repro.serve.server` -- the decision surface: a graceful
  degradation ladder (fresh artifact → stale artifact, flagged → the
  paper's deterministic N-policy heuristic), an asyncio JSON-lines
  server, and the self-driven soak loop behind ``repro-dpm serve``.
- :mod:`repro.serve.chaos` -- seeded fault injection (solver crashes,
  hangs, NaN policies, artifact corruption, drift storms) driving the
  whole loop in tests and the CI chaos job.

Since PR 10 the hot-swap is additionally gated on independent
certification (:mod:`repro.certify`, DESIGN §14): an admitted re-solve
must earn a passing certificate -- Bellman residual, LP duality gap,
exact arithmetic, cross-backend consensus -- before it reaches the
store or the server, and the certificate is persisted as a
``policy.cert.json`` sidecar checked again at bootstrap.
"""

from repro.serve.artifact import (
    ARTIFACT_SCHEMA,
    ArtifactStore,
    PolicyArtifact,
    compile_artifact,
    load_artifact,
    model_fingerprint,
    save_artifact,
    validate_artifact,
)
from repro.serve.server import PolicyServer, ServeDecision, ServingRuntime
from repro.serve.supervisor import (
    CircuitBreaker,
    ResolveReport,
    RetryPolicy,
    Supervisor,
)

__all__ = [
    "ARTIFACT_SCHEMA",
    "ArtifactStore",
    "CircuitBreaker",
    "PolicyArtifact",
    "PolicyServer",
    "ResolveReport",
    "RetryPolicy",
    "ServeDecision",
    "ServingRuntime",
    "Supervisor",
    "compile_artifact",
    "load_artifact",
    "model_fingerprint",
    "save_artifact",
    "validate_artifact",
]
