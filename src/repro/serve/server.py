"""The decision surface: degradation ladder, runtime, asyncio server.

:class:`PolicyServer` answers state→action lookups from whatever the
best currently-admitted source is, walking the degradation ladder
(DESIGN §13):

1. **fresh** -- the installed artifact tracks the estimated workload;
2. **stale** -- the installed artifact predates a confirmed drift whose
   re-solve has not succeeded (breaker open, retries exhausted);
   answers still come from the admitted table, flagged so callers and
   the staleness gauge can see it;
3. **heuristic** -- no artifact was ever admitted; answers come from
   the paper's deterministic N-policy computed directly on the model
   (no solver in the loop, cannot fail).

Every decision is tagged with its source and the artifact version it
came from, so the chaos harness can prove the invariant that matters:
*an answer is always consistent with the currently-admitted artifact
(or the deterministic heuristic) -- never a half-swapped or rejected
table, never an untyped error.*

:class:`ServingRuntime` composes the ladder with the adaptive estimator,
drift detector, and supervisor into the long-lived process behind
``repro-dpm serve``; it bootstraps from the artifact store (crash
recovery), re-solves in the background on confirmed drift, and exposes
a JSON-lines asyncio endpoint plus a deterministic virtual-time soak
loop for the chaos harness and CI.
"""

from __future__ import annotations

import asyncio
import json
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.dpm.adaptive import AdaptiveRateEstimator, DriftDetector
from repro.dpm.service_queue import STABLE, TRANSFER
from repro.dpm.system import PowerManagedSystemModel
from repro.errors import ArtifactError, ReproError, ServeRequestError
from repro.obs.runtime import active as obs_active
from repro.serve.artifact import ArtifactStore, PolicyArtifact, validate_artifact
from repro.serve.supervisor import CircuitBreaker, ResolveReport, RetryPolicy, Supervisor

#: Gauge encoding of the serving rung (higher = more degraded).
SOURCE_LEVELS = {"fresh": 0.0, "stale": 1.0, "heuristic": 2.0}


@dataclass(frozen=True)
class ServeDecision:
    """One answered lookup: the action plus its provenance.

    ``artifact`` is the exact :class:`PolicyArtifact` snapshot the
    action came from (``None`` on the heuristic rung) so harnesses can
    verify consistency against the table itself, not a re-read of
    mutable server state.
    """

    action: str
    source: str
    version: "Optional[int]"
    artifact: "Optional[PolicyArtifact]" = None


class PolicyServer:
    """The degradation ladder over one installed artifact pointer.

    The installed state is a single ``(artifact, stale?)`` tuple
    rebound atomically (CPython attribute assignment), so a decision
    concurrent with a hot-swap sees either the old admitted table or
    the new one -- never a mixture. The heuristic rung is precomputed
    at construction from :func:`repro.dpm.model_policies.n_policy_assignment`
    and involves no solver, so it cannot fail at decision time.
    """

    def __init__(
        self, model: PowerManagedSystemModel, heuristic_n: int = 1
    ) -> None:
        from repro.dpm.model_policies import n_policy_assignment

        self.model = model
        self.capacity = int(model.capacity)
        self.heuristic_n = int(heuristic_n)
        self._heuristic: "Dict[Tuple[str, str, int], str]" = {
            (state.mode, state.queue.kind, state.queue.index): action
            for state, action in n_policy_assignment(model, heuristic_n).items()
        }
        # (artifact, stale flag) -- rebound as one tuple, never mutated.
        self._installed: "Tuple[Optional[PolicyArtifact], bool]" = (None, False)
        self.n_decisions = 0
        self.n_by_source = {"fresh": 0, "stale": 0, "heuristic": 0}
        self.n_swaps = 0

    # -- pointer management (called by the supervisor/runtime) --------------

    @property
    def artifact(self) -> "Optional[PolicyArtifact]":
        return self._installed[0]

    @property
    def stale(self) -> bool:
        return self._installed[1]

    @property
    def source(self) -> str:
        """The rung the next decision will be served from."""
        artifact, stale = self._installed
        if artifact is None:
            return "heuristic"
        return "stale" if stale else "fresh"

    def _publish_level(self) -> None:
        ins = obs_active()
        if ins.metrics is not None:
            ins.metrics.gauge("serve.staleness").set(
                SOURCE_LEVELS[self.source]
            )
            artifact = self._installed[0]
            if artifact is not None:
                ins.metrics.gauge("serve.artifact.version").set(
                    float(artifact.version)
                )

    def install(self, artifact: PolicyArtifact) -> None:
        """Hot-swap *artifact* in as the fresh serving table."""
        self._installed = (artifact, False)
        self.n_swaps += 1
        self._publish_level()

    def mark_stale(self) -> None:
        """Flag the installed artifact as lagging a confirmed drift."""
        artifact, _ = self._installed
        if artifact is not None:
            self._installed = (artifact, True)
        self._publish_level()

    def mark_fresh(self) -> None:
        artifact, _ = self._installed
        if artifact is not None:
            self._installed = (artifact, False)
        self._publish_level()

    # -- the decision path ---------------------------------------------------

    def decide(
        self, mode: str, in_transfer: bool = False, count: int = 0
    ) -> ServeDecision:
        """Answer one lookup from the best available rung.

        Malformed requests raise :class:`~repro.errors.ServeRequestError`
        (typed, never a traceback past the protocol layer); valid
        requests always get an action.
        """
        ins = obs_active()
        started = time.perf_counter() if ins.enabled else 0.0
        artifact, stale = self._installed
        if artifact is not None:
            action = artifact.action_for(mode, in_transfer, count)
            source = "stale" if stale else "fresh"
            decision = ServeDecision(
                action=action,
                source=source,
                version=artifact.version,
                artifact=artifact,
            )
        else:
            decision = ServeDecision(
                action=self._heuristic_action(mode, in_transfer, count),
                source="heuristic",
                version=None,
            )
        self.n_decisions += 1
        self.n_by_source[decision.source] += 1
        if ins.enabled and ins.metrics is not None:
            metrics = ins.metrics
            metrics.counter("serve.decisions").inc()
            metrics.counter(f"serve.decisions.{decision.source}").inc()
            metrics.histogram(
                "serve.lookup_latency_s", profiling=True
            ).observe(time.perf_counter() - started)
        return decision

    def _heuristic_action(
        self, mode: str, in_transfer: bool, count: int
    ) -> str:
        if count < 0:
            raise ServeRequestError(f"occupancy must be >= 0, got {count}")
        if in_transfer:
            key = (mode, TRANSFER, min(int(count) + 1, self.capacity))
        else:
            key = (mode, STABLE, min(int(count), self.capacity))
        action = self._heuristic.get(key)
        if action is None:
            raise ServeRequestError(
                f"no joint state for mode={mode!r}, transfer={in_transfer}, "
                f"count={count} in the heuristic policy"
            )
        return action


class ServingRuntime:
    """Estimator + detector + supervisor + ladder, wired together.

    The composition behind ``repro-dpm serve``: feed arrivals in via
    :meth:`observe_arrival`, answer lookups via :meth:`decide`, and
    call :meth:`maybe_adapt` periodically -- it confirms drift through
    the detector, runs the supervised re-solve (inline, or on a
    background thread with ``background=True`` so serving never
    blocks), and walks the ladder on failure.

    Parameters mirror :class:`~repro.serve.supervisor.Supervisor`;
    ``solve`` stays injectable for the chaos harness.
    """

    def __init__(
        self,
        base_model: PowerManagedSystemModel,
        weight: float,
        store: ArtifactStore,
        solver: str = "policy_iteration",
        backend: str = "auto",
        heuristic_n: int = 1,
        drift_threshold: float = 0.25,
        drift_consecutive: int = 3,
        estimator_window: int = 50,
        retry: "Optional[RetryPolicy]" = None,
        breaker: "Optional[CircuitBreaker]" = None,
        attempt_timeout: "Optional[float]" = None,
        solve: "Optional[Callable[..., Any]]" = None,
        admission_level: str = "standard",
        certify: bool = True,
        certifier: "Optional[Callable[..., Any]]" = None,
    ) -> None:
        self.base_model = base_model
        self.weight = float(weight)
        self.store = store
        base_rate = base_model.requestor.rate
        self.estimator = AdaptiveRateEstimator(
            window=estimator_window, initial_rate=base_rate
        )
        self.detector = DriftDetector(
            base_rate, threshold=drift_threshold, consecutive=drift_consecutive
        )
        self.supervisor = Supervisor(
            base_model,
            weight,
            store,
            solver=solver,
            backend=backend,
            retry=retry,
            breaker=breaker,
            attempt_timeout=attempt_timeout,
            solve=solve,
            admission_level=admission_level,
            certify=certify,
            certifier=certifier,
        )
        self.server = PolicyServer(base_model, heuristic_n=heuristic_n)
        self.bootstrap_source: "Optional[str]" = None
        self.bootstrap_error: "Optional[str]" = None
        self._lock = threading.Lock()
        self._resolving = False
        self._background: "Optional[threading.Thread]" = None

    # -- lifecycle -----------------------------------------------------------

    def bootstrap(self, initial_solve: bool = True) -> str:
        """Recover or establish a serving table; returns the rung.

        Order: (1) a stored last-good artifact that still passes the
        admission gate *and* holds or earns a valid certificate -- the
        crash-recovery path, also what makes a SIGKILL mid-swap
        survivable; (2) a fresh initial solve when *initial_solve*;
        (3) the heuristic rung. Never raises for artifact or solver
        trouble.
        """
        try:
            stored = self.store.load()
        except ArtifactError as exc:
            self.bootstrap_error = f"{type(exc).__name__}: {exc}"
            stored = None
        if stored is not None:
            try:
                validate_artifact(
                    stored,
                    self.base_model,
                    level=self.supervisor.admission_level,
                )
            except ArtifactError as exc:
                self.bootstrap_error = f"{type(exc).__name__}: {exc}"
            else:
                if self._bootstrap_certified(stored):
                    self.server.install(stored)
                    self.supervisor.last_artifact = stored
                    self.detector.rebase(stored.rate)
                    self.bootstrap_source = "stored"
                    return self.server.source
        if initial_solve:
            report = self.supervisor.resolve(
                self.base_model.requestor.rate,
                detector=self.detector,
                install=self.server.install,
            )
            if report.ok:
                self.bootstrap_source = "solved"
                return self.server.source
            self.bootstrap_error = report.error or report.failure
        self.bootstrap_source = "heuristic"
        return self.server.source

    def _bootstrap_certified(self, stored) -> bool:
        """Is the stored artifact covered by a valid certificate?

        Accepts the stored sidecar certificate when it parses, is
        bound to this exact artifact (``artifact_checksum``), and says
        certified; otherwise re-certifies from scratch and persists the
        fresh certificate. Returns ``False`` -- sending bootstrap down
        the initial-solve rung -- when certification fails or errors.
        """
        if not self.supervisor.certify:
            return True
        from repro.certify import CertificationReport

        try:
            document = self.store.load_certificate()
        except ArtifactError:
            document = None  # corrupt sidecar: fall through to re-certify
        if document is not None:
            try:
                report = CertificationReport.from_document(document)
            except ReproError:
                report = None
            if (
                report is not None
                and report.artifact_checksum == stored.checksum
                and report.certified
            ):
                return True
        try:
            report = self.supervisor._certifier(stored)
        except ReproError as exc:
            self.bootstrap_error = f"{type(exc).__name__}: {exc}"
            return False
        if not report.certified:
            self.bootstrap_error = (
                "stored artifact failed certification: "
                + ", ".join(report.finding_codes)
            )
            return False
        self.store.save_certificate(report.to_document())
        return True

    def observe_arrival(self, timestamp: float) -> None:
        self.estimator.observe_arrival(timestamp)

    def decide(
        self, mode: str, in_transfer: bool = False, count: int = 0
    ) -> ServeDecision:
        return self.server.decide(mode, in_transfer, count)

    # -- adaptation ----------------------------------------------------------

    def maybe_adapt(self, background: bool = False) -> "Optional[ResolveReport]":
        """Check for confirmed drift and run the supervised re-solve.

        Inline by default (deterministic for tests); with
        ``background=True`` the re-solve runs on a daemon thread and
        this returns immediately (``None``) -- at most one background
        re-solve is in flight at a time.
        """
        if not self.estimator.warmed_up:
            return None
        rate = self.estimator.rate()
        if not self.detector.observe(rate):
            return None
        # Drift is confirmed: whatever is installed no longer tracks
        # the workload until a re-solve lands.
        if self.server.artifact is not None and not self.server.stale:
            self.server.mark_stale()
        if background:
            with self._lock:
                if self._resolving:
                    return None
                self._resolving = True
            thread = threading.Thread(
                target=self._resolve_and_install,
                args=(rate,),
                name="serve-adapt",
                daemon=True,
            )
            self._background = thread
            thread.start()
            return None
        return self._resolve_and_install(rate)

    def _resolve_and_install(self, rate: float) -> ResolveReport:
        try:
            report = self.supervisor.resolve(
                rate, detector=self.detector, install=self._install_fresh
            )
            return report
        finally:
            with self._lock:
                self._resolving = False

    def _install_fresh(self, artifact: PolicyArtifact) -> None:
        self.server.install(artifact)

    def join_background(self, timeout: "Optional[float]" = None) -> None:
        """Wait for an in-flight background re-solve (tests/shutdown)."""
        thread = self._background
        if thread is not None:
            thread.join(timeout)

    # -- introspection -------------------------------------------------------

    def status(self) -> "Dict[str, Any]":
        """The health/status document served by ``{"op": "health"}``."""
        artifact = self.server.artifact
        return {
            "source": self.server.source,
            "health": self.health(),
            "artifact_version": artifact.version if artifact else None,
            "artifact_rate": artifact.rate if artifact else None,
            "breaker": self.supervisor.breaker.state,
            "breaker_opened": self.supervisor.breaker.n_opened,
            "breaker_closed": self.supervisor.breaker.n_closed,
            "estimated_rate": self.estimator.rate(),
            "drift_fraction": self.detector.drift_fraction,
            "decisions": self.server.n_decisions,
            "decisions_by_source": dict(self.server.n_by_source),
            "swaps": self.server.n_swaps,
            "resolves": len(self.supervisor.history),
            "bootstrap": self.bootstrap_source,
        }

    def health(self) -> str:
        """``"ok"`` (fresh), ``"stale"``, or ``"degraded"`` (heuristic)."""
        source = self.server.source
        if source == "fresh":
            return "ok"
        if source == "stale":
            return "stale"
        return "degraded"

    # -- the asyncio endpoint ------------------------------------------------

    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """JSON-lines protocol: one request object per line.

        ``{"mode": "busy", "transfer": false, "count": 2}`` →
        ``{"action": ..., "source": ..., "version": ...}``;
        ``{"op": "health"}`` → the :meth:`status` document. Malformed
        input gets ``{"error": {"type": ..., "message": ...}}`` -- the
        connection never sees a traceback and never closes on a bad
        request.
        """
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                response = self._handle_request_line(line)
                writer.write(json.dumps(response).encode("utf-8") + b"\n")
                await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    def _handle_request_line(self, line: bytes) -> "Dict[str, Any]":
        try:
            request = json.loads(line)
        except ValueError as exc:
            return _error_payload("ServeRequestError", f"invalid JSON: {exc}")
        if not isinstance(request, dict):
            return _error_payload(
                "ServeRequestError", "request must be a JSON object"
            )
        op = request.get("op", "decide")
        if op == "health":
            return self.status()
        if op != "decide":
            return _error_payload("ServeRequestError", f"unknown op {op!r}")
        mode = request.get("mode")
        if not isinstance(mode, str):
            return _error_payload(
                "ServeRequestError", "request needs a string 'mode'"
            )
        transfer = request.get("transfer", False)
        count = request.get("count", 0)
        if not isinstance(transfer, bool) or not isinstance(count, int):
            return _error_payload(
                "ServeRequestError",
                "'transfer' must be a boolean and 'count' an integer",
            )
        try:
            decision = self.decide(mode, transfer, count)
        except ServeRequestError as exc:
            return _error_payload(type(exc).__name__, str(exc))
        return {
            "action": decision.action,
            "source": decision.source,
            "version": decision.version,
        }

    async def serve_forever(self, host: str = "127.0.0.1", port: int = 0):
        """Run the asyncio endpoint until cancelled."""
        server = await asyncio.start_server(self.handle_connection, host, port)
        async with server:
            await server.serve_forever()

    # -- the deterministic soak loop -----------------------------------------

    def soak(
        self,
        duration: float,
        seed: int = 0,
        chaos=None,
        adapt_every: int = 25,
    ) -> "SoakReport":
        """Drive the runtime through *duration* of virtual Poisson time.

        Arrivals are drawn from a seeded exponential stream whose true
        rate the optional *chaos* plan controls (drift storms); every
        arrival answers one lookup at a seeded random joint state, and
        every ``adapt_every`` arrivals the adaptation path runs
        inline. Each decision is self-checked against the exact
        artifact snapshot it reports -- a mismatch is recorded as a
        violation (and bumps ``serve.selfcheck.violations``), which the
        chaos harness asserts stays zero.

        Virtual time means the loop is deterministic and fast: a 60 s
        CI soak is 60 s of *modeled* time, not wall-clock sleeping.
        """
        rng = random.Random(seed)
        report = SoakReport(duration=float(duration), seed=int(seed))
        ins = obs_active()
        metrics = ins.metrics if ins.enabled else None
        modes = list(self.base_model.provider.modes)
        vt = 0.0
        while vt < duration:
            rate = (
                chaos.rate_at(vt)
                if chaos is not None
                else self.base_model.requestor.rate
            )
            vt += rng.expovariate(rate)
            if vt >= duration:
                break
            self.observe_arrival(vt)
            report.arrivals += 1
            mode = rng.choice(modes)
            # Occasionally query transfer states; modes that have none
            # exercise the typed-rejection path instead of an action.
            in_transfer = rng.random() < 0.2
            count = rng.randrange(0, self.base_model.capacity + 1)
            try:
                decision = self.decide(mode, in_transfer, count)
            except ServeRequestError:
                report.typed_rejections += 1
                continue
            report.decisions += 1
            report.by_source[decision.source] += 1
            if decision.artifact is not None:
                expected = decision.artifact.action_for(
                    mode, in_transfer, count
                )
                if decision.action != expected:
                    report.selfcheck_violations += 1
                    if metrics is not None:
                        metrics.counter("serve.selfcheck.violations").inc()
            if chaos is not None:
                chaos.on_arrival(self, vt, rng, report)
            if report.arrivals % adapt_every == 0:
                resolve = self.maybe_adapt()
                if resolve is not None:
                    report.resolves += 1
                    if resolve.ok:
                        report.resolve_successes += 1
        report.final_status = self.status()
        return report


@dataclass
class SoakReport:
    """What a :meth:`ServingRuntime.soak` run did, for assertions/CI."""

    duration: float
    seed: int
    arrivals: int = 0
    decisions: int = 0
    typed_rejections: int = 0
    selfcheck_violations: int = 0
    resolves: int = 0
    resolve_successes: int = 0
    by_source: "Dict[str, int]" = field(
        default_factory=lambda: {"fresh": 0, "stale": 0, "heuristic": 0}
    )
    final_status: "Dict[str, Any]" = field(default_factory=dict)

    def to_dict(self) -> "Dict[str, Any]":
        return {
            "duration": self.duration,
            "seed": self.seed,
            "arrivals": self.arrivals,
            "decisions": self.decisions,
            "typed_rejections": self.typed_rejections,
            "selfcheck_violations": self.selfcheck_violations,
            "resolves": self.resolves,
            "resolve_successes": self.resolve_successes,
            "by_source": dict(self.by_source),
            "final_status": self.final_status,
        }


def _error_payload(kind: str, message: str) -> "Dict[str, Any]":
    return {"error": {"type": kind, "message": message}}
