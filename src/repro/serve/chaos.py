"""Seeded fault injection for the serving runtime.

The chaos harness drives :mod:`repro.serve` through every failure the
design claims to survive -- solver crashes, hangs, NaN policies,
artifact corruption, drift storms -- deterministically (every choice
flows from an explicit seed), so a CI failure replays locally from the
seed alone. Two pieces:

- :class:`ChaosSolver` -- an injectable solve callable for the
  supervisor whose outcome per call is scripted or seeded: ``"ok"``
  (the real pipeline), ``"crash"`` (typed :class:`SolverError`),
  ``"hang"`` (sleeps past the supervisor's attempt timeout), ``"nan"``
  (a structurally valid result whose metrics are non-finite -- must be
  caught by artifact compilation, not served).
- :class:`ChaosPlan` -- the soak-loop hooks: a piecewise-constant
  drift storm over the true arrival rate, plus seeded on-disk artifact
  corruption and reload probes that assert corrupt files are rejected
  with typed errors while serving continues.
"""

from __future__ import annotations

import dataclasses
import math
import random
import time
from typing import Dict, List, Optional, Sequence

from repro.dpm.adaptive import solve_rated
from repro.dpm.analysis import AnalyticMetrics
from repro.dpm.system import PowerManagedSystemModel
from repro.errors import ArtifactError, SolverError
from repro.serve.artifact import validate_artifact

#: Outcomes a :class:`ChaosSolver` knows how to inject.
OUTCOMES = ("ok", "crash", "hang", "nan")


class ChaosSolver:
    """A supervisor ``solve`` callable with scripted/seeded failures.

    Parameters
    ----------
    base_model, weight, solver, backend:
        The real solve pipeline used for ``"ok"`` (and ``"nan"``)
        outcomes, via :func:`repro.dpm.adaptive.solve_rated`.
    script:
        Explicit outcome sequence consumed call by call; after it is
        exhausted every call is ``"ok"``. Mutually exclusive with
        *probabilities*.
    probabilities:
        Mapping outcome → probability for seeded sampling (missing
        mass is ``"ok"``); requires *seed*.
    seed:
        Seed for the probability sampler.
    hang_sleep:
        Wall-clock seconds a ``"hang"`` outcome blocks -- must exceed
        the supervisor's ``attempt_timeout`` to register as a hang
        (the supervisor abandons the attempt; without a timeout a hang
        would block forever, so configure one).
    """

    def __init__(
        self,
        base_model: PowerManagedSystemModel,
        weight: float,
        script: "Optional[Sequence[str]]" = None,
        probabilities: "Optional[Dict[str, float]]" = None,
        seed: "Optional[int]" = None,
        solver: str = "policy_iteration",
        backend: str = "auto",
        hang_sleep: float = 0.2,
    ) -> None:
        if script is not None and probabilities is not None:
            raise ValueError("pass script or probabilities, not both")
        if probabilities is not None and seed is None:
            raise ValueError("seeded probabilities need an explicit seed")
        for outcome in list(script or []) + list(probabilities or {}):
            if outcome not in OUTCOMES:
                raise ValueError(f"unknown chaos outcome {outcome!r}")
        self.base_model = base_model
        self.weight = float(weight)
        self.solver = solver
        self.backend = backend
        self.hang_sleep = float(hang_sleep)
        self._script: "List[str]" = list(script or [])
        self._probabilities = dict(probabilities or {})
        self._rng = random.Random(seed)
        self.outcomes: "List[str]" = []

    def _next_outcome(self) -> str:
        if self._script:
            return self._script.pop(0)
        if self._probabilities:
            roll = self._rng.random()
            cumulative = 0.0
            for outcome, p in sorted(self._probabilities.items()):
                cumulative += p
                if roll < cumulative:
                    return outcome
        return "ok"

    def __call__(self, rate: float, initial_policy=None):
        outcome = self._next_outcome()
        self.outcomes.append(outcome)
        if outcome == "crash":
            raise SolverError(
                "injected solver crash", diagnostics={"reason": "chaos"}
            )
        if outcome == "hang":
            time.sleep(self.hang_sleep)
            raise SolverError(
                "injected hang outlived its abandonment",
                diagnostics={"reason": "chaos-hang"},
            )
        result = solve_rated(
            self.base_model,
            rate,
            self.weight,
            solver=self.solver,
            backend=self.backend,
            initial_policy=initial_policy,
        )
        if outcome == "nan":
            poisoned = AnalyticMetrics(
                average_power=math.nan,
                average_queue_length=result.metrics.average_queue_length,
                loss_rate=result.metrics.loss_rate,
                accepted_rate=result.metrics.accepted_rate,
                average_waiting_time=result.metrics.average_waiting_time,
                paper_waiting_time_approximation=(
                    result.metrics.paper_waiting_time_approximation
                ),
            )
            return dataclasses.replace(result, metrics=poisoned)
        return result


class ChaosPlan:
    """Soak-loop hooks: drift storm + artifact corruption/reload probes.

    The true arrival rate is piecewise constant: segment ``i`` of
    length *storm_period* runs at ``base_rate * factor_i`` with factors
    drawn from ``[factor_low, factor_high]`` by a dedicated seeded RNG
    (log-uniform, so up- and down-drifts are symmetric). That is the
    drift storm: it moves the estimator, the estimator moves the
    detector, and the detector forces re-solves against whatever the
    :class:`ChaosSolver` throws at them.

    On each arrival the plan may also (with seeded probability)
    corrupt the on-disk artifact in place -- flip a byte, truncate, or
    replace with garbage -- and, independently, probe a reload: try to
    load + validate the stored file the way a restarting process
    would. A corrupt file must produce a typed :class:`ArtifactError`
    (counted in :attr:`reload_rejections`); anything else escapes and
    fails the harness.
    """

    def __init__(
        self,
        base_rate: float,
        seed: int = 0,
        storm_period: float = 10.0,
        factor_low: float = 0.4,
        factor_high: float = 2.5,
        corrupt_probability: float = 0.0,
        reload_probability: float = 0.0,
    ) -> None:
        if base_rate <= 0:
            raise ValueError(f"base_rate must be positive, got {base_rate}")
        if storm_period <= 0:
            raise ValueError(
                f"storm_period must be positive, got {storm_period}"
            )
        if not 0 < factor_low <= factor_high:
            raise ValueError(
                f"need 0 < factor_low <= factor_high, got "
                f"({factor_low}, {factor_high})"
            )
        self.base_rate = float(base_rate)
        self.storm_period = float(storm_period)
        self._log_low = math.log(factor_low)
        self._log_high = math.log(factor_high)
        self._factor_rng = random.Random(seed ^ 0x5EED)
        self._factors: "List[float]" = []
        self.corrupt_probability = float(corrupt_probability)
        self.reload_probability = float(reload_probability)
        self.corruptions = 0
        self.reload_attempts = 0
        self.reload_rejections = 0
        self.reload_successes = 0

    def _factor(self, segment: int) -> float:
        while len(self._factors) <= segment:
            u = self._factor_rng.random()
            self._factors.append(
                math.exp(self._log_low + u * (self._log_high - self._log_low))
            )
        return self._factors[segment]

    def rate_at(self, vt: float) -> float:
        """The true arrival rate at virtual time *vt*."""
        return self.base_rate * self._factor(int(vt // self.storm_period))

    def on_arrival(self, runtime, vt: float, rng: random.Random, report) -> None:
        """Per-arrival chaos: maybe corrupt the store, maybe probe it."""
        if (
            self.corrupt_probability > 0
            and rng.random() < self.corrupt_probability
        ):
            if self._corrupt(runtime.store, rng):
                self.corruptions += 1
        if (
            self.reload_probability > 0
            and rng.random() < self.reload_probability
        ):
            self._probe_reload(runtime)

    def _corrupt(self, store, rng: random.Random) -> bool:
        path = store.path
        if not path.exists():
            return False
        data = bytearray(path.read_bytes())
        style = rng.randrange(3)
        if style == 0 and data:  # flip one byte
            i = rng.randrange(len(data))
            data[i] ^= 0xFF
            path.write_bytes(bytes(data))
        elif style == 1:  # truncate (torn write)
            path.write_bytes(bytes(data[: len(data) // 2]))
        else:  # replace with garbage
            path.write_bytes(bytes(rng.getrandbits(8) for _ in range(64)))
        return True

    def _probe_reload(self, runtime) -> None:
        """Load + validate the stored artifact like a restart would.

        Only a typed :class:`ArtifactError` (or a clean admit) is
        acceptable; serving state is only touched on a clean admit.
        """
        self.reload_attempts += 1
        try:
            stored = runtime.store.load()
            if stored is None:
                return
            validate_artifact(
                stored,
                runtime.base_model,
                level=runtime.supervisor.admission_level,
            )
        except ArtifactError:
            self.reload_rejections += 1
            return
        self.reload_successes += 1
