"""The supervised re-solve loop: retry, circuit breaker, hot-swap.

The serving runtime must keep answering while the workload drifts, so
re-solves happen *around* serving, never in its path. The supervisor
owns that background pipeline (DESIGN §13 state machine):

    drift confirmed → breaker closed? → solve (retry w/ backoff,
    per-attempt timeout) → compile artifact → admission-validate →
    atomic store.save → install in the server → detector rebased

Every stage can fail, and each failure has exactly one behavior:

- a crashed solve retries with exponential backoff up to the
  :class:`RetryPolicy` budget;
- a hung solve is abandoned at the attempt timeout (the worker thread
  is daemonized and its eventual result discarded) and counts as a
  failed attempt;
- an inadmissible result (NaN metrics, rejected model, invalid policy)
  is *not* retried -- the same inputs would fail again -- and counts
  as a failure toward the breaker;
- when failures accumulate past the breaker threshold the breaker
  opens: re-solve requests are refused without consuming any work, the
  server keeps answering from the last-good artifact (flagged stale),
  and after ``reset_timeout`` of quiet one probe attempt is allowed
  (half-open) to decide between closing and re-opening.

Nothing in this pipeline can make the server serve a worse answer than
it already has: the swap happens only after the admission gate passed,
and the swap itself is atomic (:meth:`repro.serve.artifact.ArtifactStore.save`).
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.dpm.adaptive import DriftDetector, solve_rated
from repro.dpm.system import PowerManagedSystemModel
from repro.errors import ArtifactError, ReproError
from repro.obs.runtime import active as obs_active
from repro.serve.artifact import (
    ArtifactStore,
    PolicyArtifact,
    compile_artifact,
    validate_artifact,
)

#: Gauge encoding of the breaker state (monotone in "how broken").
BREAKER_STATES = {"closed": 0.0, "half-open": 0.5, "open": 1.0}


class CircuitBreaker:
    """Classic closed → open → half-open breaker around re-solves.

    ``record_failure`` moves a closed breaker toward open
    (``failure_threshold`` consecutive failures); an open breaker
    refuses :meth:`allow` until ``reset_timeout`` has elapsed, then
    admits exactly one probe (half-open). The probe's outcome closes or
    re-opens it. The clock is injectable so tests (and the chaos
    harness) control time deterministically.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_timeout: float = 30.0,
        clock: "Callable[[], float]" = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ArtifactError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_timeout < 0:
            raise ArtifactError(
                f"reset_timeout must be >= 0, got {reset_timeout}"
            )
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout = float(reset_timeout)
        self._clock = clock
        self._state = "closed"
        self._failures = 0
        self._opened_at: "Optional[float]" = None
        self.n_opened = 0
        self.n_closed = 0

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"``, or ``"half-open"`` (read-only)."""
        self._maybe_half_open()
        return self._state

    @property
    def consecutive_failures(self) -> int:
        return self._failures

    def _publish_state(self) -> None:
        ins = obs_active()
        if ins.metrics is not None:
            ins.metrics.gauge("serve.breaker.state").set(
                BREAKER_STATES[self._state]
            )

    def _maybe_half_open(self) -> None:
        if (
            self._state == "open"
            and self._opened_at is not None
            and self._clock() - self._opened_at >= self.reset_timeout
        ):
            self._state = "half-open"
            self._publish_state()

    def allow(self) -> bool:
        """Whether a re-solve attempt may proceed right now."""
        self._maybe_half_open()
        return self._state != "open"

    def record_success(self) -> None:
        if self._state != "closed":
            self.n_closed += 1
            ins = obs_active()
            if ins.metrics is not None:
                ins.metrics.counter("serve.breaker.closed").inc()
        self._state = "closed"
        self._failures = 0
        self._opened_at = None
        self._publish_state()

    def record_failure(self) -> None:
        self._maybe_half_open()
        self._failures += 1
        should_open = (
            self._state == "half-open"
            or self._failures >= self.failure_threshold
        )
        if should_open and self._state != "open":
            self._state = "open"
            self._opened_at = self._clock()
            self.n_opened += 1
            ins = obs_active()
            if ins.metrics is not None:
                ins.metrics.counter("serve.breaker.opened").inc()
        self._publish_state()


@dataclass
class RetryPolicy:
    """Bounded retry with exponential backoff for one re-solve request.

    ``sleep`` is injectable so deterministic tests pay no wall-clock;
    the chaos harness passes a recording stub.
    """

    attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    sleep: "Callable[[float], None]" = time.sleep

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ArtifactError(f"attempts must be >= 1, got {self.attempts}")
        if self.base_delay < 0 or self.multiplier < 1:
            raise ArtifactError(
                f"invalid backoff (base_delay={self.base_delay}, "
                f"multiplier={self.multiplier})"
            )

    def delay_before(self, attempt: int) -> float:
        """Backoff before *attempt* (1-based; attempt 1 has none)."""
        if attempt <= 1:
            return 0.0
        return self.base_delay * self.multiplier ** (attempt - 2)


@dataclass
class ResolveReport:
    """What one supervised re-solve request did, success or not.

    ``failure`` is ``None`` on success, else one of ``"crash"``
    (solver raised), ``"timeout"`` (attempt exceeded the budget),
    ``"rejected"`` (result inadmissible -- not retried),
    ``"uncertified"`` (the solution failed independent certification
    -- not retried; ``details["certification"]`` holds the finding
    codes), or ``"breaker-open"`` (refused without attempting).
    """

    ok: bool
    rate: float
    attempts: int = 0
    failure: "Optional[str]" = None
    error: "Optional[str]" = None
    artifact_version: "Optional[int]" = None
    details: "Dict[str, Any]" = field(default_factory=dict)


class _Abandoned(Exception):
    """Internal marker: the attempt thread outlived its budget."""


class Supervisor:
    """Runs admission-gated background re-solves and hot-swaps results.

    Parameters
    ----------
    base_model:
        The SYS model at its nominal rate; re-solves re-rate it.
    weight:
        Performance weight of the objective, fixed for the runtime's
        lifetime (drift is in the arrival rate, not the objective).
    store:
        Where admitted artifacts are atomically persisted.
    solver, backend:
        Forwarded to :func:`repro.dpm.adaptive.solve_rated`.
    retry:
        Per-request retry budget/backoff (default 3 attempts).
    breaker:
        Circuit breaker shared across requests.
    attempt_timeout:
        Wall-clock budget per solve attempt in seconds; ``None``
        disables the watchdog (solves run inline, fully deterministic).
        With a timeout the solve runs on a daemon thread -- a hung
        attempt is *abandoned*, not killed; its eventual result is
        discarded. CPython cannot safely kill a thread, so an abandoned
        attempt costs a core until it finishes; the breaker bounds how
        many such attempts can pile up.
    solve:
        Injectable solve callable ``(rate, initial_policy) -> result``
        for the chaos harness; defaults to the real pipeline.
    admission_level:
        Forwarded to :func:`repro.serve.artifact.validate_artifact`.
    certify:
        When true (the default), every admitted solution must also earn
        an independent certificate (:mod:`repro.certify`) before the
        hot-swap: Bellman residual, LP duality gap, exact arithmetic,
        and cross-backend consensus. A failed or crashed certification
        is a deterministic ``"uncertified"`` failure -- the last-good
        artifact keeps serving and the breaker records the failure.
    certifier:
        Injectable ``(artifact) -> CertificationReport`` for tests and
        chaos; defaults to
        :func:`repro.certify.certify_artifact` against ``base_model``.
    """

    def __init__(
        self,
        base_model: PowerManagedSystemModel,
        weight: float,
        store: ArtifactStore,
        solver: str = "policy_iteration",
        backend: str = "auto",
        retry: "Optional[RetryPolicy]" = None,
        breaker: "Optional[CircuitBreaker]" = None,
        attempt_timeout: "Optional[float]" = None,
        solve: "Optional[Callable[..., Any]]" = None,
        admission_level: str = "standard",
        certify: bool = True,
        certifier: "Optional[Callable[[PolicyArtifact], Any]]" = None,
    ) -> None:
        self.base_model = base_model
        self.weight = float(weight)
        self.store = store
        self.solver = solver
        self.backend = backend
        self.retry = retry if retry is not None else RetryPolicy()
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.attempt_timeout = attempt_timeout
        self.admission_level = admission_level
        self._solve = solve if solve is not None else self._default_solve
        self.certify = certify
        self._certifier = (
            certifier if certifier is not None else self._default_certifier
        )
        self.last_artifact: "Optional[PolicyArtifact]" = None
        self.history: "List[ResolveReport]" = []

    def _default_certifier(self, artifact: PolicyArtifact):
        from repro.certify import certify_artifact

        return certify_artifact(artifact, self.base_model)

    def _default_solve(self, rate: float, initial_policy=None):
        return solve_rated(
            self.base_model,
            rate,
            self.weight,
            solver=self.solver,
            backend=self.backend,
            initial_policy=initial_policy,
        )

    # -- one attempt ---------------------------------------------------------

    def _attempt(self, rate: float, seed) -> Any:
        """One solve attempt under the watchdog; raises on crash/timeout."""
        if self.attempt_timeout is None:
            return self._solve(rate, seed)
        out: "queue.Queue" = queue.Queue(maxsize=1)

        def worker() -> None:
            try:
                out.put(("ok", self._solve(rate, seed)))
            except BaseException as exc:  # noqa: BLE001 - relayed typed below
                out.put(("err", exc))

        thread = threading.Thread(
            target=worker, name="serve-resolve", daemon=True
        )
        thread.start()
        try:
            kind, payload = out.get(timeout=self.attempt_timeout)
        except queue.Empty:
            raise _Abandoned(
                f"solve attempt exceeded {self.attempt_timeout:g}s"
            ) from None
        if kind == "err":
            raise payload
        return payload

    # -- the full supervised request ----------------------------------------

    def resolve(
        self,
        rate: float,
        seed_policy=None,
        detector: "Optional[DriftDetector]" = None,
        install: "Optional[Callable[[PolicyArtifact], None]]" = None,
    ) -> ResolveReport:
        """Re-solve for *rate*, admit, persist, and install the result.

        Never raises for solver/admission trouble -- every outcome is a
        :class:`ResolveReport`, and on any failure the caller's serving
        state is untouched. Programming errors still propagate.
        """
        ins = obs_active()
        metrics = ins.metrics if ins.enabled else None
        report = ResolveReport(ok=False, rate=float(rate))
        self.history.append(report)
        if not self.breaker.allow():
            report.failure = "breaker-open"
            if metrics is not None:
                metrics.counter("serve.resolve.refused").inc()
            return report
        seed = seed_policy
        if seed is None and self.last_artifact is not None:
            seed = self._seed_from_artifact(self.last_artifact)
        with ins.span("serve.resolve", rate=rate):
            result = None
            for attempt in range(1, self.retry.attempts + 1):
                delay = self.retry.delay_before(attempt)
                if delay > 0:
                    if metrics is not None:
                        metrics.counter("serve.resolve.retries").inc()
                    self.retry.sleep(delay)
                report.attempts = attempt
                if metrics is not None:
                    metrics.counter("serve.resolve.attempts").inc()
                try:
                    result = self._attempt(rate, seed)
                    break
                except _Abandoned as exc:
                    report.failure = "timeout"
                    report.error = str(exc)
                    if metrics is not None:
                        metrics.counter("serve.resolve.timeouts").inc()
                except ReproError as exc:
                    report.failure = "crash"
                    report.error = f"{type(exc).__name__}: {exc}"
                except (
                    ArithmeticError,
                    RuntimeError,
                    ValueError,
                ) as exc:
                    # Numerical backends (and injected chaos) surface
                    # raw numpy/scipy failures; treated as a crash.
                    report.failure = "crash"
                    report.error = f"{type(exc).__name__}: {exc}"
            if result is None:
                self.breaker.record_failure()
                if metrics is not None:
                    metrics.counter("serve.resolve.failures").inc()
                return report
            # Compile + admit. Inadmissible results are deterministic
            # failures of the inputs -- no retry.
            version = 1 + (
                self.last_artifact.version if self.last_artifact else 0
            )
            try:
                artifact = compile_artifact(
                    result_model(self, rate),
                    result,
                    version=version,
                    solver=self.solver,
                    backend=self.backend,
                )
                validate_artifact(
                    artifact, self.base_model, level=self.admission_level
                )
            except ArtifactError as exc:
                report.failure = "rejected"
                report.error = f"{type(exc).__name__}: {exc}"
                self.breaker.record_failure()
                if metrics is not None:
                    metrics.counter("serve.resolve.failures").inc()
                return report
            # Independent certification gates the hot-swap: an admitted
            # but uncertified solution never reaches the store or the
            # server -- deterministic failure, no retry, last-good
            # artifact keeps serving.
            certificate = None
            if self.certify:
                try:
                    cert_report = self._certifier(artifact)
                except ReproError as exc:
                    report.failure = "uncertified"
                    report.error = f"{type(exc).__name__}: {exc}"
                    self.breaker.record_failure()
                    if metrics is not None:
                        metrics.counter("serve.resolve.failures").inc()
                        metrics.counter("serve.resolve.uncertified").inc()
                    return report
                if not cert_report.certified:
                    codes = cert_report.finding_codes
                    report.failure = "uncertified"
                    report.error = (
                        f"solution failed certification: {', '.join(codes)}"
                    )
                    report.details["certification"] = codes
                    self.breaker.record_failure()
                    if metrics is not None:
                        metrics.counter("serve.resolve.failures").inc()
                        metrics.counter("serve.resolve.uncertified").inc()
                    return report
                certificate = cert_report.to_document()
            self.store.save(artifact)
            if certificate is not None:
                self.store.save_certificate(certificate)
            if install is not None:
                install(artifact)
            self.last_artifact = artifact
            self.breaker.record_success()
            if detector is not None:
                detector.rebase(rate)
            report.ok = True
            report.artifact_version = artifact.version
            if metrics is not None:
                metrics.counter("serve.resolve.successes").inc()
                metrics.counter("serve.swaps").inc()
            return report

    def _seed_from_artifact(self, artifact: PolicyArtifact):
        """Rebuild a warm-start seed Policy from the last-good artifact.

        Best-effort: any failure (e.g. the artifact predates a model
        change) degrades to a cold start, mirroring the optimizer's own
        advisory-seed contract.
        """
        from repro.ctmdp.policy import Policy
        from repro.dpm.adaptive import rated_model

        try:
            rated = rated_model(self.base_model, artifact.rate)
            return Policy(
                rated.build_ctmdp(artifact.weight), artifact.assignment()
            )
        except ReproError:
            return None


def result_model(supervisor: Supervisor, rate: float):
    """The model a supervised solve belongs to (the re-rated clone)."""
    from repro.dpm.adaptive import rated_model

    return rated_model(supervisor.base_model, rate)
