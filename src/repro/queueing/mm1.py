"""The M/M/1 queue in closed form.

Poisson arrivals at rate ``lambda``, exponential service at rate ``mu``,
single server, infinite room, utilization ``rho = lambda / mu < 1``:

- ``P[N = n] = (1 - rho) rho^n``;
- mean number in system ``L = rho / (1 - rho)``;
- mean sojourn time ``W = 1 / (mu - lambda)`` (Little's law);
- mean number waiting ``Lq = rho^2 / (1 - rho)``;
- mean waiting-in-queue time ``Wq = rho / (mu - lambda)``.

Used to validate the generic CTMC stationary solver (the birth-death
generator must reproduce these exactly) and the simulator (an always-on
policy on a large-capacity queue must approach them).
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import DomainError, InvalidModelError


def _finite_or_domain(value: float, what: str) -> float:
    """Guard a closed-form result against inf/NaN escaping as an answer.

    The constructors bound the parameter domains, but ``rho`` can sit so
    close to 1 that a denominator underflows and a division overflows;
    a typed error beats a silent ``inf``.
    """
    if not math.isfinite(value):
        raise DomainError(
            f"{what} overflows at this utilization; rho is too close to "
            "the domain boundary for a finite double-precision value"
        )
    return value


class MM1Queue:
    """Closed-form M/M/1 metrics.

    Parameters
    ----------
    arrival_rate:
        ``lambda > 0``.
    service_rate:
        ``mu > lambda`` (the queue must be stable).
    """

    def __init__(self, arrival_rate: float, service_rate: float) -> None:
        if not (arrival_rate > 0 and math.isfinite(arrival_rate)):
            raise DomainError(
                f"arrival rate must be positive and finite, got {arrival_rate}"
            )
        if not math.isfinite(service_rate) or service_rate <= arrival_rate:
            raise DomainError(
                f"M/M/1 requires finite mu > lambda, got mu={service_rate}, "
                f"lambda={arrival_rate}"
            )
        self.arrival_rate = float(arrival_rate)
        self.service_rate = float(service_rate)

    @property
    def utilization(self) -> float:
        """``rho = lambda / mu``."""
        return self.arrival_rate / self.service_rate

    def state_probability(self, n: int) -> float:
        """``P[N = n] = (1 - rho) rho^n``."""
        if n < 0:
            raise ValueError(f"state must be >= 0, got {n}")
        rho = self.utilization
        return (1.0 - rho) * rho**n

    def mean_number_in_system(self) -> float:
        """``L = rho / (1 - rho)``."""
        rho = self.utilization
        return _finite_or_domain(rho / (1.0 - rho), "mean number in system")

    def mean_number_waiting(self) -> float:
        """``Lq = rho^2 / (1 - rho)``."""
        rho = self.utilization
        return _finite_or_domain(rho * rho / (1.0 - rho), "mean number waiting")

    def mean_sojourn_time(self) -> float:
        """``W = 1 / (mu - lambda)``."""
        return _finite_or_domain(
            1.0 / (self.service_rate - self.arrival_rate), "mean sojourn time"
        )

    def mean_waiting_time(self) -> float:
        """``Wq = rho / (mu - lambda)``."""
        return _finite_or_domain(
            self.utilization / (self.service_rate - self.arrival_rate),
            "mean waiting time",
        )

    def birth_death_generator(self, truncation: int) -> np.ndarray:
        """The (truncated) birth-death generator for solver validation.

        Parameters
        ----------
        truncation:
            Number of states retained (``0 .. truncation - 1``); choose
            it large enough that ``rho^truncation`` is negligible.
        """
        if truncation < 2:
            raise InvalidModelError(f"truncation must be >= 2, got {truncation}")
        n = truncation
        g = np.zeros((n, n))
        for i in range(n - 1):
            g[i, i + 1] = self.arrival_rate
        for i in range(1, n):
            g[i, i - 1] = self.service_rate
        np.fill_diagonal(g, 0.0)
        np.fill_diagonal(g, -g.sum(axis=1))
        return g
