"""Closed-form queueing results for cross-validation.

These textbook formulas (Bolch et al. [15]; Heyman & Sobel [12]) give
independent ground truth for the CTMC machinery and the simulator:

- :mod:`repro.queueing.mm1` -- the M/M/1 queue;
- :mod:`repro.queueing.mm1k` -- the finite M/M/1/K queue with loss;
- :mod:`repro.queueing.mg1` -- the M/G/1 queue (Pollaczek--Khinchine);
- :mod:`repro.queueing.npolicy_mm1` -- the M/M/1 queue under an
  N-policy (the class the paper proves optimal for two-state servers).
"""

from repro.queueing.mg1 import MG1Queue
from repro.queueing.mm1 import MM1Queue
from repro.queueing.mm1k import MM1KQueue
from repro.queueing.npolicy_mm1 import NPolicyMM1Queue

__all__ = ["MG1Queue", "MM1KQueue", "MM1Queue", "NPolicyMM1Queue"]
