"""The M/G/1 queue: Pollaczek--Khinchine closed forms.

Poisson arrivals at rate ``lambda``, i.i.d. general service with mean
``E[S] = 1/mu`` and squared coefficient of variation ``scv``,
utilization ``rho = lambda E[S] < 1``:

- mean waiting in queue ``Wq = rho E[S] (1 + scv) / (2 (1 - rho))``
  (the PK formula in two-moment form);
- mean sojourn ``W = Wq + E[S]``; ``L = lambda W`` (Little).

For ``scv = 1`` this reduces to M/M/1; for ``scv = 0`` to M/D/1 (half
the queueing delay). The service-distribution ablation leans on exactly
this monotonicity, and the simulator is validated against these values
under an always-on server.
"""

from __future__ import annotations

import math

from repro.errors import DomainError


class MG1Queue:
    """Closed-form M/G/1 metrics from the first two service moments.

    Parameters
    ----------
    arrival_rate:
        ``lambda > 0``.
    service_mean:
        ``E[S] > 0`` with ``lambda * E[S] < 1``.
    service_scv:
        Squared coefficient of variation of the service time (>= 0).
    """

    def __init__(
        self, arrival_rate: float, service_mean: float, service_scv: float
    ) -> None:
        if not (arrival_rate > 0 and math.isfinite(arrival_rate)):
            raise DomainError(
                f"arrival rate must be positive and finite, got {arrival_rate}"
            )
        if not (service_mean > 0 and math.isfinite(service_mean)):
            raise DomainError(
                f"service mean must be positive and finite, got {service_mean}"
            )
        if not (service_scv >= 0 and math.isfinite(service_scv)):
            raise DomainError(
                f"service scv must be finite and >= 0, got {service_scv}"
            )
        if arrival_rate * service_mean >= 1:
            raise DomainError(
                f"M/G/1 requires rho < 1, got rho = {arrival_rate * service_mean:g}"
            )
        self.arrival_rate = float(arrival_rate)
        self.service_mean = float(service_mean)
        self.service_scv = float(service_scv)

    @property
    def utilization(self) -> float:
        return self.arrival_rate * self.service_mean

    def mean_waiting_time(self) -> float:
        """``Wq`` -- time in queue before service (PK formula)."""
        from repro.queueing.mm1 import _finite_or_domain

        rho = self.utilization
        return _finite_or_domain(
            rho * self.service_mean * (1.0 + self.service_scv)
            / (2.0 * (1.0 - rho)),
            "mean waiting time",
        )

    def mean_sojourn_time(self) -> float:
        """``W = Wq + E[S]``."""
        return self.mean_waiting_time() + self.service_mean

    def mean_number_in_system(self) -> float:
        """``L = lambda W`` (Little)."""
        return self.arrival_rate * self.mean_sojourn_time()

    def mean_number_waiting(self) -> float:
        """``Lq = lambda Wq``."""
        return self.arrival_rate * self.mean_waiting_time()
