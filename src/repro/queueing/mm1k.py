"""The finite M/M/1/K queue with loss, in closed form.

At most ``K`` requests in the system (in-service included); arrivals
finding a full system are lost. With ``rho = lambda / mu``:

- ``P[N = n] = rho^n (1 - rho) / (1 - rho^{K+1})`` for ``rho != 1``
  and ``1 / (K + 1)`` for ``rho = 1``;
- blocking probability ``P_K`` (PASTA: a Poisson arrival sees the
  stationary distribution);
- throughput ``lambda (1 - P_K)``;
- ``L = sum n P[N = n]``; ``W = L / (lambda (1 - P_K))`` by Little's
  law on accepted traffic.

This is the exact reference for the paper's SQ when the server never
sleeps (always-on policy, self-switch transfer collapsed), and the
strongest single validation of the joint model's queue mechanics.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidModelError


class MM1KQueue:
    """Closed-form M/M/1/K metrics.

    Parameters
    ----------
    arrival_rate:
        ``lambda > 0``.
    service_rate:
        ``mu > 0`` (stability is not required for a finite queue).
    capacity:
        ``K >= 1``, the system capacity.
    """

    def __init__(self, arrival_rate: float, service_rate: float, capacity: int) -> None:
        if arrival_rate <= 0:
            raise InvalidModelError(f"arrival rate must be positive, got {arrival_rate}")
        if service_rate <= 0:
            raise InvalidModelError(f"service rate must be positive, got {service_rate}")
        if capacity < 1:
            raise InvalidModelError(f"capacity must be >= 1, got {capacity}")
        self.arrival_rate = float(arrival_rate)
        self.service_rate = float(service_rate)
        self.capacity = int(capacity)

    @property
    def utilization(self) -> float:
        return self.arrival_rate / self.service_rate

    def state_probabilities(self) -> np.ndarray:
        """``P[N = n]`` for ``n = 0 .. K``."""
        rho = self.utilization
        k = self.capacity
        if abs(rho - 1.0) < 1e-12:
            return np.full(k + 1, 1.0 / (k + 1))
        powers = rho ** np.arange(k + 1)
        return powers * (1.0 - rho) / (1.0 - rho ** (k + 1))

    def blocking_probability(self) -> float:
        """``P_K``: fraction of arrivals lost (PASTA)."""
        return float(self.state_probabilities()[-1])

    def throughput(self) -> float:
        """Accepted arrival rate ``lambda (1 - P_K)``."""
        return self.arrival_rate * (1.0 - self.blocking_probability())

    def mean_number_in_system(self) -> float:
        probs = self.state_probabilities()
        return float(np.arange(self.capacity + 1) @ probs)

    def mean_sojourn_time(self) -> float:
        """``W = L / (lambda (1 - P_K))`` (Little on accepted traffic)."""
        return self.mean_number_in_system() / self.throughput()

    def birth_death_generator(self) -> np.ndarray:
        """The exact ``(K+1)``-state generator for solver validation."""
        k = self.capacity
        g = np.zeros((k + 1, k + 1))
        for i in range(k):
            g[i, i + 1] = self.arrival_rate
        for i in range(1, k + 1):
            g[i, i - 1] = self.service_rate
        np.fill_diagonal(g, -g.sum(axis=1))
        return g
