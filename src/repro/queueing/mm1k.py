"""The finite M/M/1/K queue with loss, in closed form.

At most ``K`` requests in the system (in-service included); arrivals
finding a full system are lost. With ``rho = lambda / mu``:

- ``P[N = n] = rho^n (1 - rho) / (1 - rho^{K+1})`` for ``rho != 1``
  and ``1 / (K + 1)`` for ``rho = 1``;
- blocking probability ``P_K`` (PASTA: a Poisson arrival sees the
  stationary distribution);
- throughput ``lambda (1 - P_K)``;
- ``L = sum n P[N = n]``; ``W = L / (lambda (1 - P_K))`` by Little's
  law on accepted traffic.

This is the exact reference for the paper's SQ when the server never
sleeps (always-on policy, self-switch transfer collapsed), and the
strongest single validation of the joint model's queue mechanics.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import DomainError


class MM1KQueue:
    """Closed-form M/M/1/K metrics.

    Parameters
    ----------
    arrival_rate:
        ``lambda > 0``.
    service_rate:
        ``mu > 0`` (stability is not required for a finite queue).
    capacity:
        ``K >= 1``, the system capacity.
    """

    def __init__(self, arrival_rate: float, service_rate: float, capacity: int) -> None:
        if not (arrival_rate > 0 and math.isfinite(arrival_rate)):
            raise DomainError(
                f"arrival rate must be positive and finite, got {arrival_rate}"
            )
        if not (service_rate > 0 and math.isfinite(service_rate)):
            raise DomainError(
                f"service rate must be positive and finite, got {service_rate}"
            )
        if capacity < 1:
            raise DomainError(f"capacity must be >= 1, got {capacity}")
        self.arrival_rate = float(arrival_rate)
        self.service_rate = float(service_rate)
        self.capacity = int(capacity)

    @property
    def utilization(self) -> float:
        return self.arrival_rate / self.service_rate

    def state_probabilities(self) -> np.ndarray:
        """``P[N = n]`` for ``n = 0 .. K``."""
        rho = self.utilization
        k = self.capacity
        if abs(rho - 1.0) < 1e-12:
            return np.full(k + 1, 1.0 / (k + 1))
        if rho > 1.0:
            # Normalize from the top term: ``rho**(k+1)`` overflows to
            # inf for large rho (emitting NaN through the division), but
            # ``p_n = rho**(n-k) / sum_m rho**(m-k)`` uses only powers
            # <= 1 and converges to a point mass at K as rho -> inf.
            powers = (1.0 / rho) ** np.arange(k, -1, -1)
            return powers / powers.sum()
        powers = rho ** np.arange(k + 1)
        return powers * (1.0 - rho) / (1.0 - rho ** (k + 1))

    def blocking_probability(self) -> float:
        """``P_K``: fraction of arrivals lost (PASTA)."""
        return float(self.state_probabilities()[-1])

    def throughput(self) -> float:
        """Accepted arrival rate ``lambda (1 - P_K)``.

        For overloaded queues (``rho > 1``) the equivalent flow-balance
        form ``mu (1 - P_0)`` is used: ``1 - P_K`` cancels
        catastrophically as ``P_K -> 1`` while ``P_0`` is computed
        accurately by the top-normalized distribution.
        """
        probs = self.state_probabilities()
        if self.utilization > 1.0:
            return self.service_rate * (1.0 - float(probs[0]))
        return self.arrival_rate * (1.0 - float(probs[-1]))

    def mean_number_in_system(self) -> float:
        probs = self.state_probabilities()
        return float(np.arange(self.capacity + 1) @ probs)

    def mean_sojourn_time(self) -> float:
        """``W = L / (lambda (1 - P_K))`` (Little on accepted traffic)."""
        return self.mean_number_in_system() / self.throughput()

    def birth_death_generator(self) -> np.ndarray:
        """The exact ``(K+1)``-state generator for solver validation."""
        k = self.capacity
        g = np.zeros((k + 1, k + 1))
        for i in range(k):
            g[i, i + 1] = self.arrival_rate
        for i in range(1, k + 1):
            g[i, i - 1] = self.service_rate
        np.fill_diagonal(g, -g.sum(axis=1))
        return g
