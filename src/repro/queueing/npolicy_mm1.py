"""The M/M/1 queue under an N-policy, in closed form.

Heyman & Sobel [12] (the paper's reference for N-policies): the server
turns off when the system empties and back on when ``N`` requests have
accumulated. With instantaneous on/off switches and ``rho = lambda/mu``:

- the regeneration cycle is an accumulation phase of mean ``N / lambda``
  followed by a busy period started by ``N`` customers of mean
  ``N / (mu - lambda)``, so the mean cycle is
  ``E[C] = N mu / (lambda (mu - lambda))``;
- the off fraction is ``1 - rho`` for every ``N`` (the server must be
  busy a fraction ``rho`` regardless);
- the mean number in system is ``L = rho / (1 - rho) + (N - 1) / 2`` --
  the plain M/M/1 value plus the accumulation penalty;
- for a two-state server (power ``P_on`` / ``P_off``, switch energies
  ``E_down + E_up`` per cycle) the average power is
  ``rho P_on + (1 - rho) P_off + (E_down + E_up) / E[C]``.

The last formula makes the paper's Section-V claim quantitative: for a
*two-state* server the only policy lever is how often the on/off cycle
is paid, and the N-policy with the largest admissible ``N`` minimizes
power at any given mean delay -- there is nothing else a stationary
policy can trade. With three or more server states (the paper's setup)
intermediate modes open tradeoffs the N-policy cannot express, which is
exactly what Figure 4 shows.
"""

from __future__ import annotations

import math

from repro.errors import DomainError, InvalidModelError


class NPolicyMM1Queue:
    """Closed-form N-policy M/M/1 metrics (instantaneous switches).

    Parameters
    ----------
    arrival_rate, service_rate:
        ``lambda`` and ``mu`` with ``mu > lambda``.
    n:
        The activation threshold ``N >= 1``.
    """

    def __init__(self, arrival_rate: float, service_rate: float, n: int) -> None:
        if not (arrival_rate > 0 and math.isfinite(arrival_rate)):
            raise DomainError(
                f"arrival rate must be positive and finite, got {arrival_rate}"
            )
        if not math.isfinite(service_rate) or service_rate <= arrival_rate:
            raise DomainError(
                f"N-policy M/M/1 requires finite mu > lambda, got "
                f"mu={service_rate}, lambda={arrival_rate}"
            )
        if n < 1:
            raise DomainError(f"N must be >= 1, got {n}")
        self.arrival_rate = float(arrival_rate)
        self.service_rate = float(service_rate)
        self.n = int(n)

    @property
    def utilization(self) -> float:
        return self.arrival_rate / self.service_rate

    def mean_cycle_length(self) -> float:
        """``E[C] = N mu / (lambda (mu - lambda))``."""
        from repro.queueing.mm1 import _finite_or_domain

        lam, mu = self.arrival_rate, self.service_rate
        return _finite_or_domain(
            self.n * mu / (lam * (mu - lam)), "mean cycle length"
        )

    def off_fraction(self) -> float:
        """Fraction of time the server is off: ``1 - rho`` for any N."""
        return 1.0 - self.utilization

    def mean_number_in_system(self) -> float:
        """``L = rho / (1 - rho) + (N - 1) / 2``."""
        from repro.queueing.mm1 import _finite_or_domain

        rho = self.utilization
        return _finite_or_domain(
            rho / (1.0 - rho) + (self.n - 1) / 2.0, "mean number in system"
        )

    def mean_sojourn_time(self) -> float:
        """``W = L / lambda`` (Little's law)."""
        return self.mean_number_in_system() / self.arrival_rate

    def average_power(
        self,
        power_on: float,
        power_off: float,
        cycle_switch_energy: float,
    ) -> float:
        """Two-state-server average power under this N-policy.

        Parameters
        ----------
        power_on, power_off:
            Server power in the on and off states (watts).
        cycle_switch_energy:
            Total switching energy paid per cycle, ``E_down + E_up``
            (joules).
        """
        if power_on < 0 or power_off < 0 or cycle_switch_energy < 0:
            raise InvalidModelError("powers and energies must be non-negative")
        rho = self.utilization
        return (
            rho * power_on
            + (1.0 - rho) * power_off
            + cycle_switch_energy / self.mean_cycle_length()
        )
