"""Discrete-time Markov decision process substrate (the [11] baseline).

The prior work the paper improves on -- Paleologo, Benini et al.,
"Policy Optimization for Dynamic Power Management" (DAC 1998) [11] --
formulates power management in *discrete* time: the clock is divided
into slices of length ``L``, the system state is observed and a command
issued once per slice, and the optimization runs on a discrete-time
Markov decision chain.

This subpackage provides that entire formulation so the paper's
comparison can be made concrete:

- :mod:`repro.dtmdp.model` -- the DTMDP value type (per-state actions,
  transition probability rows, per-step costs);
- :mod:`repro.dtmdp.solvers` -- average-cost policy iteration, relative
  value iteration and the occupation-measure LP ([11]'s solver) for
  discrete chains;
- :mod:`repro.dtmdp.discretize` -- the principled time-slicing of a
  CTMDP: ``P_a = expm(G_a L)`` per action with per-slice costs, i.e.
  exactly the chain a per-slice controller experiences when it holds
  each command for one slice.

The discretization bench quantifies the paper's first criticism of
[11] ("the power-managed system is modeled in the discrete-time
domain, which limits its [use] in real applications"): the sliced
optimum approaches the CTMDP optimum only as ``L -> 0``, precisely
where the per-slice PM overhead blows up (see the asynchrony bench).
"""

from repro.dtmdp.discretize import DiscretizedDPM, discretize_ctmdp
from repro.dtmdp.model import DTMDP
from repro.dtmdp.solvers import (
    DTPolicyIterationResult,
    dt_policy_iteration,
    dt_relative_value_iteration,
    dt_solve_average_cost_lp,
)

__all__ = [
    "DTMDP",
    "DTPolicyIterationResult",
    "DiscretizedDPM",
    "discretize_ctmdp",
    "dt_policy_iteration",
    "dt_relative_value_iteration",
    "dt_solve_average_cost_lp",
]
