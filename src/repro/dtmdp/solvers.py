"""Average-cost solvers for discrete-time MDPs.

The discrete-time counterparts of :mod:`repro.ctmdp`:

- :func:`dt_policy_iteration` -- Howard's policy iteration: evaluate
  ``h + g 1 = c + P h`` with ``h[ref] = 0``, improve greedily, repeat;
- :func:`dt_relative_value_iteration` -- the span-contraction iteration
  (requires aperiodicity; callers can blend a self-loop if needed);
- :func:`dt_solve_average_cost_lp` -- the occupation-measure LP with
  constraints ``x^T (P - I) = 0``, ``sum x = 1``: [11]'s solver, with
  the same optional linear performance constraints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Optional

import numpy as np
from scipy.optimize import linprog

from repro.dtmdp.model import DTMDP
from repro.errors import InfeasibleConstraintError, SolverError


@dataclass(frozen=True)
class DTPolicyIterationResult:
    """Outcome of discrete-time policy iteration / evaluation.

    ``gain`` is the average cost *per step*; multiply by the slice rate
    to compare against continuous-time cost rates.
    """

    assignment: "Dict[Hashable, Hashable]"
    gain: float
    bias: np.ndarray
    stationary: np.ndarray
    iterations: int


def dt_evaluate_policy(
    mdp: DTMDP,
    assignment: "Dict[Hashable, Hashable]",
    reference_state: int = 0,
) -> DTPolicyIterationResult:
    """Exact average-cost evaluation: solve ``(I - P) h + g 1 = c``."""
    p = mdp.policy_matrix(assignment)
    c = mdp.policy_costs(assignment)
    n = p.shape[0]
    a = np.zeros((n + 1, n + 1))
    a[:n, :n] = np.eye(n) - p
    a[:n, n] = 1.0
    a[n, reference_state] = 1.0
    b = np.concatenate([c, [0.0]])
    try:
        solution = np.linalg.solve(a, b)
    except np.linalg.LinAlgError as exc:
        raise SolverError(
            "discrete policy evaluation is singular (multichain policy?)"
        ) from exc
    h = solution[:n]
    gain = float(solution[n])
    # Stationary distribution of P (unichain): solve pi (P - I) = 0.
    m = (p - np.eye(n)).T
    m[-1, :] = 1.0
    rhs = np.zeros(n)
    rhs[-1] = 1.0
    pi = np.linalg.solve(m, rhs)
    pi = np.clip(pi, 0.0, None)
    pi /= pi.sum()
    return DTPolicyIterationResult(
        assignment=dict(assignment), gain=gain, bias=h, stationary=pi, iterations=0
    )


def dt_policy_iteration(
    mdp: DTMDP,
    initial: Optional[Dict[Hashable, Hashable]] = None,
    max_iterations: int = 1000,
    atol: float = 1e-10,
) -> DTPolicyIterationResult:
    """Howard policy iteration for unichain average-cost DTMDPs."""
    mdp.validate()
    assignment = (
        dict(initial)
        if initial is not None
        else {s: mdp.actions(s)[0] for s in mdp.states}
    )
    evaluation = dt_evaluate_policy(mdp, assignment)
    for iteration in range(1, max_iterations + 1):
        h = evaluation.bias
        changed = False
        new_assignment: Dict[Hashable, Hashable] = {}
        for state in mdp.states:
            incumbent = assignment[state]
            best_action = incumbent
            best_value = mdp.cost(state, incumbent) + float(
                mdp.transition_row(state, incumbent) @ h
            )
            for action in mdp.actions(state):
                if action == incumbent:
                    continue
                value = mdp.cost(state, action) + float(
                    mdp.transition_row(state, action) @ h
                )
                if value < best_value - atol:
                    best_value = value
                    best_action = action
            new_assignment[state] = best_action
            if best_action != incumbent:
                changed = True
        assignment = new_assignment
        evaluation = dt_evaluate_policy(mdp, assignment)
        if not changed:
            return DTPolicyIterationResult(
                assignment=assignment,
                gain=evaluation.gain,
                bias=evaluation.bias,
                stationary=evaluation.stationary,
                iterations=iteration,
            )
    raise SolverError(
        f"discrete policy iteration did not converge in {max_iterations} iterations"
    )


def dt_relative_value_iteration(
    mdp: DTMDP,
    span_tolerance: float = 1e-10,
    max_iterations: int = 1_000_000,
) -> DTPolicyIterationResult:
    """Relative value iteration (requires an aperiodic unichain model)."""
    mdp.validate()
    n = mdp.n_states
    w = np.zeros(n)
    rows = {
        (i, a): mdp.transition_row(s, a)
        for i, s in enumerate(mdp.states)
        for a in mdp.actions(s)
    }
    costs = {
        (i, a): mdp.cost(s, a)
        for i, s in enumerate(mdp.states)
        for a in mdp.actions(s)
    }
    for iteration in range(1, max_iterations + 1):
        new_w = np.empty(n)
        greedy: List[Hashable] = []
        for i, state in enumerate(mdp.states):
            best_value, best_action = np.inf, None
            for action in mdp.actions(state):
                value = costs[(i, action)] + float(rows[(i, action)] @ w)
                if value < best_value:
                    best_value, best_action = value, action
            new_w[i] = best_value
            greedy.append(best_action)
        diff = new_w - w
        span = float(diff.max() - diff.min())
        w = new_w - new_w[0]
        if span < span_tolerance:
            assignment = dict(zip(mdp.states, greedy))
            evaluation = dt_evaluate_policy(mdp, assignment)
            return DTPolicyIterationResult(
                assignment=assignment,
                gain=evaluation.gain,
                bias=w.copy(),
                stationary=evaluation.stationary,
                iterations=iteration,
            )
    raise SolverError(
        f"discrete value iteration did not reach span {span_tolerance:g} "
        f"in {max_iterations} sweeps"
    )


@dataclass(frozen=True)
class DTLinearProgramResult:
    """Outcome of the discrete occupation-measure LP."""

    gain: float
    occupation: "Dict[tuple, float]"
    deterministic_assignment: "Dict[Hashable, Hashable]"
    extra_cost_values: "Dict[str, float]"


def dt_solve_average_cost_lp(
    mdp: DTMDP,
    objective: Optional[str] = None,
    constraints: Optional[Mapping[str, float]] = None,
) -> DTLinearProgramResult:
    """[11]'s linear program, optionally constrained.

    Without *objective*, minimizes the model's per-step cost; with it,
    minimizes the named extra cost subject to upper bounds on other
    named extra costs (per-step averages).
    """
    mdp.validate()
    pairs = mdp.state_action_pairs()
    n = mdp.n_states
    n_vars = len(pairs)
    if objective is None:
        costs = np.array([mdp.cost(s, a) for s, a in pairs])
    else:
        costs = np.array([mdp.extra_cost(s, a, objective) for s, a in pairs])
    a_eq = np.zeros((n + 1, n_vars))
    for k, (state, action) in enumerate(pairs):
        row = mdp.transition_row(state, action)
        i = mdp.index_of(state)
        a_eq[:n, k] = row
        a_eq[i, k] -= 1.0
        a_eq[n, k] = 1.0
    b_eq = np.zeros(n + 1)
    b_eq[n] = 1.0
    a_ub = b_ub = None
    if constraints:
        a_ub = np.array(
            [[mdp.extra_cost(s, a, name) for s, a in pairs] for name in constraints]
        )
        b_ub = np.array([float(bound) for bound in constraints.values()])
    result = linprog(
        costs, A_eq=a_eq, b_eq=b_eq, A_ub=a_ub, b_ub=b_ub,
        bounds=(0, None), method="highs",
    )
    if result.status == 2:
        raise InfeasibleConstraintError(
            f"no stationary policy satisfies {dict(constraints or {})!r}"
        )
    if not result.success:
        raise SolverError(f"discrete LP failed: {result.message}")
    occupation = {
        pair: float(x) for pair, x in zip(pairs, result.x) if x > 1e-12
    }
    assignment: Dict[Hashable, Hashable] = {}
    for state in mdp.states:
        best, best_mass = None, -1.0
        for action in mdp.actions(state):
            mass = occupation.get((state, action), 0.0)
            if mass > best_mass:
                best, best_mass = action, mass
        assignment[state] = best
    extra_names = sorted(
        {name for s, a in pairs for name in mdp._extra[(mdp.index_of(s), a)]}
    )
    extras = {
        name: float(
            sum(
                occupation.get((s, a), 0.0) * mdp.extra_cost(s, a, name)
                for s, a in pairs
            )
        )
        for name in extra_names
    }
    return DTLinearProgramResult(
        gain=float(result.fun),
        occupation=occupation,
        deterministic_assignment=assignment,
        extra_cost_values=extras,
    )
