"""The discrete-time MDP model type.

The discrete analogue of :class:`repro.ctmdp.model.CTMDP`: per state
``i`` and action ``a`` a transition probability row ``P_ia`` and a
per-step cost ``c(i, a)``. This is the object [11] optimizes over; it
is also what :func:`repro.dtmdp.discretize.discretize_ctmdp` produces
from a continuous-time model.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import InvalidModelError, InvalidPolicyError

#: Probability-row normalization tolerance.
PROB_ATOL = 1e-9


class DTMDP:
    """A finite discrete-time MDP with labeled states.

    Build with :meth:`add_action`; query via :meth:`actions`,
    :meth:`transition_row` and :meth:`cost`. Rows must be stochastic.
    """

    def __init__(self, states: Sequence[Hashable]) -> None:
        self._states: Tuple[Hashable, ...] = tuple(states)
        if not self._states:
            raise InvalidModelError("a DTMDP needs at least one state")
        if len(set(self._states)) != len(self._states):
            raise InvalidModelError("state labels must be unique")
        self._index = {s: i for i, s in enumerate(self._states)}
        self._rows: "Dict[Tuple[int, Hashable], np.ndarray]" = {}
        self._costs: "Dict[Tuple[int, Hashable], float]" = {}
        self._extra: "Dict[Tuple[int, Hashable], Dict[str, float]]" = {}
        self._actions: "Dict[int, List[Hashable]]" = {
            i: [] for i in range(len(self._states))
        }

    # -- construction --------------------------------------------------------

    def add_action(
        self,
        state: Hashable,
        action: Hashable,
        probabilities: np.ndarray,
        cost: float,
        extra_costs: Optional[Dict[str, float]] = None,
    ) -> None:
        """Register *action* with its transition row and per-step cost."""
        i = self.index_of(state)
        if action in self._actions[i]:
            raise InvalidModelError(f"action {action!r} already defined for {state!r}")
        row = np.asarray(probabilities, dtype=float)
        n = self.n_states
        if row.shape != (n,):
            raise InvalidModelError(
                f"probability row shape {row.shape} does not match {n} states"
            )
        if np.any(row < -PROB_ATOL):
            raise InvalidModelError(
                f"negative probability in {state!r}/{action!r}: {row.min():g}"
            )
        total = row.sum()
        if abs(total - 1.0) > 1e-6:
            raise InvalidModelError(
                f"row of {state!r}/{action!r} sums to {total:g}, expected 1"
            )
        row = np.clip(row, 0.0, None)
        row = row / row.sum()
        self._rows[(i, action)] = row
        self._costs[(i, action)] = float(cost)
        self._extra[(i, action)] = dict(extra_costs or {})
        self._actions[i].append(action)

    def validate(self) -> None:
        missing = [self._states[i] for i, acts in self._actions.items() if not acts]
        if missing:
            raise InvalidModelError(f"states with no actions: {missing!r}")

    # -- accessors -------------------------------------------------------------

    @property
    def states(self) -> Tuple[Hashable, ...]:
        return self._states

    @property
    def n_states(self) -> int:
        return len(self._states)

    def index_of(self, state: Hashable) -> int:
        try:
            return self._index[state]
        except KeyError:
            raise InvalidModelError(f"unknown state {state!r}") from None

    def actions(self, state: Hashable) -> "List[Hashable]":
        return list(self._actions[self.index_of(state)])

    def transition_row(self, state: Hashable, action: Hashable) -> np.ndarray:
        try:
            return self._rows[(self.index_of(state), action)]
        except KeyError:
            raise InvalidModelError(
                f"action {action!r} not available in state {state!r}"
            ) from None

    def cost(self, state: Hashable, action: Hashable) -> float:
        self.transition_row(state, action)  # existence check
        return self._costs[(self.index_of(state), action)]

    def extra_cost(self, state: Hashable, action: Hashable, name: str) -> float:
        self.transition_row(state, action)
        return self._extra[(self.index_of(state), action)].get(name, 0.0)

    def state_action_pairs(self) -> "List[Tuple[Hashable, Hashable]]":
        return [
            (self._states[i], a)
            for i in range(self.n_states)
            for a in self._actions[i]
        ]

    # -- policies ---------------------------------------------------------------

    def policy_matrix(self, assignment: Dict[Hashable, Hashable]) -> np.ndarray:
        """Transition matrix of a deterministic policy."""
        self._check_assignment(assignment)
        return np.vstack(
            [self.transition_row(s, assignment[s]) for s in self._states]
        )

    def policy_costs(self, assignment: Dict[Hashable, Hashable]) -> np.ndarray:
        """Per-step cost vector of a deterministic policy."""
        self._check_assignment(assignment)
        return np.array([self.cost(s, assignment[s]) for s in self._states])

    def _check_assignment(self, assignment: Dict[Hashable, Hashable]) -> None:
        missing = [s for s in self._states if s not in assignment]
        if missing:
            raise InvalidPolicyError(f"policy misses states: {missing!r}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DTMDP(n_states={self.n_states}, n_pairs={len(self._rows)})"
