"""Time-slicing a continuous-time DPM model into a DTMDP.

The [11] formulation: time is divided into slices of length ``L``; the
PM observes the state at each slice boundary and issues one command,
held for the whole slice. The chain a per-slice controller experiences
is therefore exact, not approximate:

- transition matrix per held action ``a``: ``P_a = expm(G_a L)`` where
  row ``i`` of ``G_a`` is the CTMDP generator row of state ``i`` under
  ``a`` -- substituting the model's default valid action wherever ``a``
  is invalid in a mid-slice state (e.g. a power-down command reaching a
  busy server is refused, matching the simulator's ``reject``
  semantics);
- per-slice cost: the expected integral of the cost rate over the
  slice, ``[expm(([[G_a, c_a], [0, 0]]) L)]_{i, n}`` -- the same
  augmented-exponential closed form as Eqn. 2.5.

What *is* lost is reactivity between slice boundaries: the controller
cannot respond to arrivals or completions mid-slice. The discretization
bench sweeps ``L`` and shows the optimal cost rate approaching the
CTMDP optimum only as ``L -> 0`` -- the paper's criticism of [11] made
quantitative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np
from scipy.linalg import expm

from repro.dpm import cost as cost_channels
from repro.dpm.model_policies import default_valid_action
from repro.dpm.system import PowerManagedSystemModel
from repro.dtmdp.model import DTMDP
from repro.errors import InvalidModelError


@dataclass(frozen=True)
class DiscretizedDPM:
    """A time-sliced DPM decision chain.

    Attributes
    ----------
    mdp:
        The DTMDP over the joint system states; per-step costs are
        *slice integrals* (divide by :attr:`slice_length` for rates).
    slice_length:
        The slice ``L`` in seconds.
    weight:
        The Eqn.-3.1 weight baked into the per-step cost.
    """

    mdp: DTMDP
    slice_length: float
    weight: float

    def gain_rate(self, per_step_gain: float) -> float:
        """Convert a per-step gain into a continuous-time cost rate."""
        return per_step_gain / self.slice_length


def _slice_integral(g: np.ndarray, rates: np.ndarray, length: float) -> np.ndarray:
    """``integral_0^L expm(G s) r ds`` via the augmented exponential."""
    n = g.shape[0]
    aug = np.zeros((n + 1, n + 1))
    aug[:n, :n] = g
    aug[:n, n] = rates
    return expm(aug * length)[:n, n]


def discretize_ctmdp(
    model: PowerManagedSystemModel,
    slice_length: float,
    weight: float = 0.0,
) -> DiscretizedDPM:
    """Build the exact per-slice decision chain for *model*.

    Parameters
    ----------
    model:
        The DPM system; both the transfer-state and the lumped variant
        work (use the lumped variant for the faithful [11] baseline --
        its power-down decisions live in states a slice boundary can
        observe).
    slice_length:
        The slice ``L`` (> 0).
    weight:
        Performance weight of the per-step objective.
    """
    if slice_length <= 0:
        raise InvalidModelError(f"slice length must be positive, got {slice_length}")
    ct = model.build_ctmdp(weight)
    states = list(ct.states)
    n = len(states)
    dt = DTMDP(states)
    for command in model.provider.modes:
        # Held-command dynamics: each state follows the command if valid,
        # its default valid action otherwise.
        g = np.empty((n, n))
        cost_rates = np.empty(n)
        power_rates = np.empty(n)
        delay_rates = np.empty(n)
        loss_rates = np.empty(n)
        for i, state in enumerate(states):
            action = (
                command
                if model.is_valid_action(state, command)
                else default_valid_action(model, state)
            )
            g[i, :] = ct.generator_row(state, action)
            cost_rates[i] = ct.cost(state, action)
            power_rates[i] = ct.extra_cost(state, action, cost_channels.POWER)
            delay_rates[i] = ct.extra_cost(state, action, cost_channels.QUEUE_LENGTH)
            loss_rates[i] = ct.extra_cost(state, action, cost_channels.LOSS)
        p = expm(g * slice_length)
        p = np.clip(p, 0.0, None)
        p /= p.sum(axis=1, keepdims=True)
        cost_slice = _slice_integral(g, cost_rates, slice_length)
        power_slice = _slice_integral(g, power_rates, slice_length)
        delay_slice = _slice_integral(g, delay_rates, slice_length)
        loss_slice = _slice_integral(g, loss_rates, slice_length)
        for i, state in enumerate(states):
            if not model.is_valid_action(state, command):
                continue  # the PM would never issue it here
            dt.add_action(
                state,
                command,
                probabilities=p[i],
                cost=float(cost_slice[i]),
                extra_costs={
                    cost_channels.POWER: float(power_slice[i]),
                    cost_channels.QUEUE_LENGTH: float(delay_slice[i]),
                    cost_channels.LOSS: float(loss_slice[i]),
                },
            )
    dt.validate()
    return DiscretizedDPM(mdp=dt, slice_length=slice_length, weight=weight)


def slice_metric_rates(
    discretized: DiscretizedDPM,
    assignment: "Dict",
) -> "Dict[str, float]":
    """Time-average power/queue/loss rates of a per-slice policy.

    Computed from the stationary distribution of the policy's slice
    chain and the per-slice extra-cost integrals.
    """
    from repro.dtmdp.solvers import dt_evaluate_policy

    evaluation = dt_evaluate_policy(discretized.mdp, assignment)
    pi = evaluation.stationary
    mdp = discretized.mdp
    rates = {}
    for name in (
        cost_channels.POWER,
        cost_channels.QUEUE_LENGTH,
        cost_channels.LOSS,
    ):
        per_step = float(
            sum(
                pi[mdp.index_of(s)] * mdp.extra_cost(s, assignment[s], name)
                for s in mdp.states
            )
        )
        rates[name] = per_step / discretized.slice_length
    return rates
