"""Synchronous (clock-driven) power-manager wrapper.

The discrete-time formulation of [11] requires the PM to re-evaluate and
re-issue commands every time slice; the paper criticizes this: "the
power management program needs to send control signals to the components
in every time-slice, which results in heavy signal traffic and heavy
load on the system resources (therefore more power dissipation)".

:class:`SynchronousPolicyWrapper` emulates that regime inside our
event-driven simulator: it wraps any inner policy, consults it only on
clock ticks of period ``time_slice`` (re-arming a timer forever), and
ignores the asynchronous events in between. The PM-activity ablation
bench compares its invocation counts and achieved metrics against the
native asynchronous execution of the same inner policy -- quantifying
the paper's asynchrony claim.

A per-invocation energy overhead can be charged to model the signal
traffic cost; it is reported through the simulator's switch-energy
channel so average power reflects it.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import InvalidPolicyError
from repro.policies.base import Decision, PowerManagementPolicy, SystemView


class SynchronousPolicyWrapper(PowerManagementPolicy):
    """Consult the inner policy only every ``time_slice`` seconds.

    Parameters
    ----------
    inner:
        The decision logic (any :class:`PowerManagementPolicy`); it sees
        only the tick-time snapshots.
    time_slice:
        The discrete-time period ``L`` of [11]'s model.

    Notes
    -----
    Between ticks, every event returns no decision but re-arms the next
    tick timer (the simulator cancels stale timers on every state
    change, so the wrapper must re-request the remaining time). Events
    are *not* forwarded; in particular a transfer decision is deferred
    to the next tick, exactly the latency penalty a clocked manager
    pays.
    """

    def __init__(self, inner: PowerManagementPolicy, time_slice: float) -> None:
        if time_slice <= 0:
            raise InvalidPolicyError(f"time slice must be positive, got {time_slice}")
        self.inner = inner
        self.time_slice = float(time_slice)
        self._next_tick: Optional[float] = None
        self.n_ticks = 0

    @property
    def name(self) -> str:
        return f"Synchronous({self.inner.name}, L={self.time_slice:g})"

    def reset(self) -> None:
        self.inner.reset()
        self._next_tick = None
        self.n_ticks = 0

    def decide(self, view: SystemView) -> Decision:
        if self._next_tick is None:
            self._next_tick = view.time + self.time_slice
        if view.time + 1e-12 >= self._next_tick:
            # Tick: consult the inner policy and schedule the next one.
            self.n_ticks += 1
            while self._next_tick <= view.time + 1e-12:
                self._next_tick += self.time_slice
            inner_decision = self.inner.decide(view)
            return Decision(
                command=inner_decision.command,
                recheck_after=self._next_tick - view.time,
            )
        # Off-tick event: stay silent, keep the clock armed (the
        # simulator invalidated any previously scheduled timer).
        return Decision(recheck_after=self._next_tick - view.time)
