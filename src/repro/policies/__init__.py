"""Event-driven power-management policies (the PM component).

Every policy implements :class:`repro.policies.base.
PowerManagementPolicy`: the simulator invokes :meth:`decide` on each
system state change (arrival, service completion, switch completion,
expired timer), and the policy answers with an optional mode command and
an optional timer request. This is exactly the paper's *asynchronous*
power manager -- no per-time-slice polling.

Provided policies:

- :class:`~repro.policies.optimal.OptimalCTMDPPolicy` -- table lookup of
  a solved CTMDP policy over the joint SP x SQ state (the paper's
  approach), plus :class:`~repro.policies.optimal.AdaptiveCTMDPPolicy`
  which re-estimates the arrival rate online.
- :class:`~repro.policies.npolicy.NPolicy` -- activate at N waiting
  requests, deactivate when empty (Section V).
- :class:`~repro.policies.greedy.GreedyPolicy` -- N-policy with N = 1.
- :class:`~repro.policies.timeout.TimeoutPolicy` -- sleep after a fixed
  idle timeout; :class:`~repro.policies.timeout.MultiLevelTimeoutPolicy`
  cascades through several low-power modes.
- :class:`~repro.policies.always_on.AlwaysOnPolicy` -- never power down
  (performance upper bound / power baseline).
- :class:`~repro.policies.oracle.OracleIdlePolicy` -- clairvoyant
  break-even policy (needs a trace workload; energy lower-bound
  reference).
"""

from repro.policies.always_on import AlwaysOnPolicy
from repro.policies.base import Decision, PowerManagementPolicy, SystemView
from repro.policies.greedy import GreedyPolicy
from repro.policies.npolicy import NPolicy
from repro.policies.optimal import (
    AdaptiveCTMDPPolicy,
    OptimalCTMDPPolicy,
    StochasticCTMDPPolicy,
)
from repro.policies.oracle import OracleIdlePolicy
from repro.policies.synchronous import SynchronousPolicyWrapper
from repro.policies.timeout import MultiLevelTimeoutPolicy, TimeoutPolicy

__all__ = [
    "AdaptiveCTMDPPolicy",
    "AlwaysOnPolicy",
    "Decision",
    "GreedyPolicy",
    "MultiLevelTimeoutPolicy",
    "NPolicy",
    "OptimalCTMDPPolicy",
    "OracleIdlePolicy",
    "PowerManagementPolicy",
    "StochasticCTMDPPolicy",
    "SynchronousPolicyWrapper",
    "SystemView",
    "TimeoutPolicy",
]
