"""The N-policy (Section V).

"An N-policy is a policy that activates the server when there are N
customers waiting for service and deactivates the server when there are
no customers in the system" [12]. The simulator-side implementation
mirrors :func:`repro.dpm.model_policies.n_policy_assignment` exactly, so
analytic and simulated evaluations describe the same policy:

- at a transfer point with an empty system, power down to *sleep_mode*;
- at a transfer point with work remaining, stay and keep serving (an
  arrival during an in-flight power-down therefore pulls the server
  back, just as the CTMDP transfer-state action table does);
- while powered down, wake to *active_mode* when the occupancy reaches
  ``N``.
"""

from __future__ import annotations

from typing import Optional

from repro.dpm.service_provider import ServiceProvider
from repro.errors import InvalidPolicyError
from repro.policies.base import Decision, PowerManagementPolicy, SystemView
from repro.policies.helpers import command_if_needed


class NPolicy(PowerManagementPolicy):
    """Activate at ``N`` requests, deactivate when empty.

    Parameters
    ----------
    n:
        Activation threshold (>= 1).
    provider:
        The SP description; supplies default mode choices.
    sleep_mode:
        Power-down target; defaults to the lowest-power inactive mode.
    active_mode:
        Wake-up target; defaults to the fastest active mode.
    """

    def __init__(
        self,
        n: int,
        provider: ServiceProvider,
        sleep_mode: Optional[str] = None,
        active_mode: Optional[str] = None,
    ) -> None:
        if n < 1:
            raise InvalidPolicyError(f"N must be >= 1, got {n}")
        self.n = int(n)
        self.sleep_mode = (
            sleep_mode if sleep_mode is not None else provider.deepest_sleep_mode()
        )
        self.active_mode = (
            active_mode if active_mode is not None else provider.fastest_active_mode()
        )
        if provider.is_active(self.sleep_mode):
            raise InvalidPolicyError(f"sleep mode {self.sleep_mode!r} is active")
        if not provider.is_active(self.active_mode):
            raise InvalidPolicyError(f"active mode {self.active_mode!r} is inactive")

    @property
    def name(self) -> str:
        return f"NPolicy(N={self.n})"

    def _desired(self, view: SystemView) -> Optional[str]:
        if view.in_transfer:
            return self.sleep_mode if view.occupancy == 0 else view.mode
        heading = view.switch_target if view.switch_target is not None else view.mode
        heading_active = view.provider.is_active(heading)
        if not heading_active and view.occupancy >= self.n:
            return self.active_mode
        return None

    def decide(self, view: SystemView) -> Decision:
        return command_if_needed(view, self._desired(view))
