"""CTMDP-optimal power management (the paper's PM).

:class:`OptimalCTMDPPolicy` executes a solved stationary policy on the
joint SP x SQ state: the simulator's view is mapped to the model's
:class:`~repro.dpm.system.SystemState` (stable or transfer) and the
policy table supplies the mode command. Because the table covers every
reachable joint state, the PM is purely reactive -- no timers -- and is
invoked only on state changes: the *asynchronous* policy the paper
advertises.

:class:`AdaptiveCTMDPPolicy` adds the Section-III adaptivity remark:
it estimates the arrival rate from a sliding window of inter-arrival
times and re-solves (with caching per rate band) when the estimate
drifts.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Union

from repro.ctmdp.policy import Policy, RandomizedPolicy
from repro.dpm.adaptive import AdaptivePolicySolver, AdaptiveRateEstimator
from repro.dpm.service_queue import QueueState, stable, transfer
from repro.dpm.system import PowerManagedSystemModel, SystemState
from repro.errors import InvalidPolicyError
from repro.policies.base import Decision, PowerManagementPolicy, SystemView
from repro.policies.helpers import command_if_needed


def view_to_system_state(view: SystemView, capacity: int) -> SystemState:
    """Map a simulator snapshot to the model's joint state.

    During a transfer the model index is ``waiting + 1`` (the state
    ``q_{i -> i-1}`` holds ``i - 1`` waiting requests). The physical
    queue can briefly hold ``Q`` waiting requests during a transfer
    (the model's unspecified boundary); the lookup clamps to the
    closest modeled state ``q_{Q -> Q-1}``.
    """
    if view.in_transfer:
        index = min(view.waiting_count + 1, capacity)
        queue: QueueState = transfer(index)
    else:
        queue = stable(min(view.occupancy, capacity))
    return SystemState(view.mode, queue)


class OptimalCTMDPPolicy(PowerManagementPolicy):
    """Table-lookup execution of a solved CTMDP policy.

    Parameters
    ----------
    policy:
        A solved :class:`~repro.ctmdp.policy.Policy`, a
        :class:`~repro.ctmdp.policy.RandomizedPolicy` (its most-probable
        deterministic rounding is executed), or a raw
        ``{SystemState: mode}`` mapping.
    capacity:
        The queue capacity the policy was solved for.
    label:
        Optional display name (e.g. ``"ctmdp(w=1.0)"``).
    """

    def __init__(
        self,
        policy: Union[Policy, RandomizedPolicy, Mapping[SystemState, str]],
        capacity: int,
        label: Optional[str] = None,
    ) -> None:
        if isinstance(policy, RandomizedPolicy):
            table = policy.deterministic_rounding().as_dict()
        elif isinstance(policy, Policy):
            table = policy.as_dict()
        else:
            table = dict(policy)
        if not table:
            raise InvalidPolicyError("empty policy table")
        self._table: Dict[SystemState, str] = dict(table)
        self._capacity = int(capacity)
        self._label = label

    @classmethod
    def from_optimization(
        cls, model: PowerManagedSystemModel, result, label: Optional[str] = None
    ) -> "OptimalCTMDPPolicy":
        """Build from a :class:`~repro.dpm.optimizer.OptimizationResult`."""
        return cls(result.policy, model.capacity, label=label)

    @property
    def name(self) -> str:
        return self._label if self._label is not None else "OptimalCTMDPPolicy"

    def lookup(self, state: SystemState) -> Optional[str]:
        """The table's action for *state*, ``None`` if unmapped."""
        return self._table.get(state)

    def decide(self, view: SystemView) -> Decision:
        state = view_to_system_state(view, self._capacity)
        desired = self._table.get(state)
        return command_if_needed(view, desired)


class StochasticCTMDPPolicy(PowerManagementPolicy):
    """Executes a *randomized* stationary policy by sampling actions.

    The constrained LP optimum may randomize between two actions in the
    state where the delay constraint binds
    (:func:`repro.ctmdp.linear_program.solve_constrained_lp`). The LP's
    per-state action probabilities are occupation-*time* fractions; to
    realize them by sampling once per state entry they are converted to
    jump-chain (per-entry) probabilities ``p_entry(a) propto
    p_time(a) * R_a`` where ``R_a`` is the total exit rate under ``a``.
    With that conversion the embedded jump chain and the mean holding
    times of the simulated process match the LP's mixture generator
    exactly, so the realized occupation measure (hence power and queue
    length) equals the LP prediction up to sampling noise.

    Parameters
    ----------
    policy:
        The randomized policy to execute (carries its CTMDP, from which
        the exit rates are read).
    capacity:
        Queue capacity the policy was solved for.
    seed:
        Seed of the policy's private sampling stream (independent from
        the simulator's workload streams).
    label:
        Optional display name.
    """

    def __init__(
        self,
        policy: RandomizedPolicy,
        capacity: int,
        seed: int = 0,
        label: Optional[str] = None,
    ) -> None:
        import numpy as np

        self._policy = policy
        self._capacity = int(capacity)
        self._seed = int(seed)
        self._label = label
        self._rng = np.random.default_rng(self._seed)
        # Per-entry sampling distributions: p_time(a) * exit_rate(a),
        # normalized. Zero-probability actions are dropped.
        self._dists: Dict[SystemState, "tuple[list, object]"] = {}
        mdp = policy.mdp
        for state in mdp.states:
            dist = policy.distribution(state)
            actions = [a for a, p in dist.items() if p > 0.0]
            weights = np.array(
                [dist[a] * float(mdp.data(state, a).rates.sum()) for a in actions]
            )
            total = weights.sum()
            if total <= 0:
                # Degenerate (absorbing under every chosen action): keep
                # the time-weighted distribution as a fallback.
                weights = np.array([dist[a] for a in actions])
                total = weights.sum()
            self._dists[state] = (actions, weights / total)

    @property
    def name(self) -> str:
        return self._label if self._label is not None else "StochasticCTMDPPolicy"

    def reset(self) -> None:
        import numpy as np

        self._rng = np.random.default_rng(self._seed)

    def decide(self, view: SystemView) -> Decision:
        state = view_to_system_state(view, self._capacity)
        entry = self._dists.get(state)
        if entry is None:
            return command_if_needed(view, None)
        actions, probs = entry
        if len(actions) == 1:
            desired = actions[0]
        else:
            desired = actions[int(self._rng.choice(len(actions), p=probs))]
        return command_if_needed(view, desired)


class AdaptiveCTMDPPolicy(PowerManagementPolicy):
    """CTMDP policy with online arrival-rate tracking.

    Parameters
    ----------
    solver:
        The per-rate-band policy cache/re-solver.
    estimator:
        Sliding-window rate estimator; a fresh default is created per
        :meth:`reset` if not supplied.
    """

    def __init__(
        self,
        solver: AdaptivePolicySolver,
        estimator: Optional[AdaptiveRateEstimator] = None,
    ) -> None:
        self._solver = solver
        self._estimator_template = estimator
        self._estimator = estimator or AdaptiveRateEstimator()
        self._capacity = solver.base_model.capacity
        self._initial_rate = solver.base_model.requestor.rate
        self._table_cache: Dict[int, Dict[SystemState, str]] = {}

    @property
    def name(self) -> str:
        return "AdaptiveCTMDPPolicy"

    @property
    def n_solves(self) -> int:
        """Number of distinct rate bands solved so far."""
        return self._solver.n_solves

    def reset(self) -> None:
        self._estimator = self._estimator_template or AdaptiveRateEstimator(
            initial_rate=self._initial_rate
        )

    def current_rate_estimate(self) -> float:
        return self._estimator.rate()

    def decide(self, view: SystemView) -> Decision:
        if view.event == "arrival":
            self._estimator.observe_arrival(view.time)
        rate = (
            self._estimator.rate()
            if self._estimator.warmed_up
            else self._initial_rate
        )
        result = self._solver.policy_for_rate(rate)
        key = id(result)
        if key not in self._table_cache:
            table_policy = result.policy
            if isinstance(table_policy, RandomizedPolicy):
                table_policy = table_policy.deterministic_rounding()
            self._table_cache[key] = table_policy.as_dict()
        state = view_to_system_state(view, self._capacity)
        desired = self._table_cache[key].get(state)
        return command_if_needed(view, desired)
