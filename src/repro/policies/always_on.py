"""The always-on policy: never power down.

A performance upper bound and power baseline: the server is driven to
(and kept in) the fastest active mode regardless of load.
"""

from __future__ import annotations

from typing import Optional

from repro.dpm.service_provider import ServiceProvider
from repro.policies.base import Decision, PowerManagementPolicy, SystemView
from repro.policies.helpers import command_if_needed


class AlwaysOnPolicy(PowerManagementPolicy):
    """Keep the SP in an active mode at all times."""

    def __init__(
        self, provider: ServiceProvider, active_mode: Optional[str] = None
    ) -> None:
        self.active_mode = (
            active_mode if active_mode is not None else provider.fastest_active_mode()
        )

    @property
    def name(self) -> str:
        return "AlwaysOnPolicy"

    def decide(self, view: SystemView) -> Decision:
        return command_if_needed(view, self.active_mode)
