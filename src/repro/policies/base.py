"""The power-manager interface between policies and the simulator.

The PM "reads the system state and issues mode-switching commands to the
SP" (Section III). The simulator hands the policy a :class:`SystemView`
snapshot on every state change and receives a :class:`Decision` back:

- ``Decision.command`` -- a destination mode for the SP (``None`` means
  no command; during a *transfer* decision ``None`` means "stay and keep
  serving");
- ``Decision.recheck_after`` -- ask to be woken again after a delay *if
  nothing else changes first* (how timeout policies are expressed; the
  simulator drops stale timers automatically).

Events carried by ``SystemView.event``:

- ``"start"`` -- simulation begin (choose the initial stance);
- ``"arrival"`` -- a request was admitted (or lost, see
  ``view.arrival_lost``);
- ``"service_complete"`` -- a request departed; ``view.in_transfer`` is
  True: this is the paper's transfer-state decision point;
- ``"switch_complete"`` -- a commanded mode switch finished;
- ``"timer"`` -- a previously requested recheck fired with no
  intervening state change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.dpm.service_provider import ServiceProvider


@dataclass(frozen=True)
class SystemView:
    """Immutable snapshot of the system handed to the policy.

    Attributes
    ----------
    time:
        Current simulation time.
    event:
        What just happened (see module docstring).
    mode:
        The SP's current mode (the *source* mode while a switch is in
        flight).
    switch_target:
        Destination of an in-flight switch, else ``None``.
    in_transfer:
        True between a service completion and the completion of the
        switch the PM commanded there -- the paper's transfer state.
    occupancy:
        Requests in the system, in-service included (the model's
        ``q_i``).
    waiting_count:
        Requests waiting, in-service excluded.
    is_serving:
        True while a request is in service.
    capacity:
        The queue capacity ``Q``.
    arrival_lost:
        On an ``"arrival"`` event, whether the request was dropped.
    provider:
        The SP description (modes, rates, powers) for policy decisions.
    """

    time: float
    event: str
    mode: str
    switch_target: Optional[str]
    in_transfer: bool
    occupancy: int
    waiting_count: int
    is_serving: bool
    capacity: int
    arrival_lost: bool
    provider: ServiceProvider

    @property
    def is_idle(self) -> bool:
        """No requests anywhere in the system."""
        return self.occupancy == 0


@dataclass(frozen=True)
class Decision:
    """The policy's answer to one invocation."""

    command: Optional[str] = None
    recheck_after: Optional[float] = None


#: The no-op decision.
NO_DECISION = Decision()


class PowerManagementPolicy:
    """Base class for event-driven power managers."""

    #: Set by clairvoyant policies; the simulator then exposes lookahead.
    clairvoyant: bool = False

    def reset(self) -> None:
        """Clear internal state before a fresh simulation run."""

    def decide(self, view: SystemView) -> Decision:
        """React to a system state change; see the module docstring."""
        raise NotImplementedError

    @property
    def name(self) -> str:
        """Human-readable policy name for reports."""
        return type(self).__name__
