"""Clairvoyant break-even policy (an energy lower-bound reference).

Knows the exact arrival trace. At each idle start it compares the
upcoming idle period ``T`` against the classical break-even time

``T_be = (E_down + E_up) / (P_active - P_sleep)``

and sleeps only when ``T > T_be``; it also pre-wakes so the (mean)
wake-up switch completes roughly when the next request lands. This is
the standard oracle used in the DPM literature to bound what any online
policy (including the CTMDP-optimal one) can achieve on a given trace.
Not part of the paper's experiments -- provided as an extension
reference for the examples and ablation benches.
"""

from __future__ import annotations

from typing import Optional

from repro.dpm.service_provider import ServiceProvider
from repro.errors import InvalidPolicyError
from repro.policies.base import Decision, PowerManagementPolicy, SystemView
from repro.policies.helpers import command_if_needed
from repro.sim.workload import TraceArrivals


def break_even_time(
    provider: ServiceProvider, sleep_mode: str, active_mode: str
) -> float:
    """Idle duration above which sleeping saves energy.

    Uses mean switching energies and the active/sleep power gap; the
    denominator is guaranteed positive for any sensible device (sleep
    draws less than active).
    """
    power_gap = provider.power_rate(active_mode) - provider.power_rate(sleep_mode)
    if power_gap <= 0:
        raise InvalidPolicyError(
            f"sleep mode {sleep_mode!r} does not draw less power than "
            f"active mode {active_mode!r}"
        )
    round_trip_energy = provider.switching_energy(
        active_mode, sleep_mode
    ) + provider.switching_energy(sleep_mode, active_mode)
    return round_trip_energy / power_gap


class OracleIdlePolicy(PowerManagementPolicy):
    """Trace-clairvoyant sleep-or-stay decisions with pre-wake.

    Parameters
    ----------
    trace:
        The exact arrival trace the simulation will replay; must be the
        same object passed to the simulator as the workload.
    provider:
        SP description.
    sleep_mode, active_mode:
        Mode choices as in the other policies.
    """

    clairvoyant = True

    def __init__(
        self,
        trace: TraceArrivals,
        provider: ServiceProvider,
        sleep_mode: Optional[str] = None,
        active_mode: Optional[str] = None,
    ) -> None:
        self._trace = trace
        self.sleep_mode = (
            sleep_mode if sleep_mode is not None else provider.deepest_sleep_mode()
        )
        self.active_mode = (
            active_mode if active_mode is not None else provider.fastest_active_mode()
        )
        self._break_even = break_even_time(provider, self.sleep_mode, self.active_mode)
        self._wake_latency = provider.switching_time(self.sleep_mode, self.active_mode)

    @property
    def name(self) -> str:
        return "OracleIdlePolicy"

    def decide(self, view: SystemView) -> Decision:
        if view.occupancy > 0:
            heading = (
                view.switch_target if view.switch_target is not None else view.mode
            )
            if not view.provider.is_active(heading):
                return command_if_needed(view, self.active_mode)
            return command_if_needed(view, None)
        # Idle: consult the future.
        next_arrival = self._trace.peek_after(view.time)
        if next_arrival is None:
            # No more requests ever: sleep unconditionally.
            return command_if_needed(view, self.sleep_mode)
        idle_period = next_arrival - view.time
        heading = view.switch_target if view.switch_target is not None else view.mode
        if view.provider.is_active(heading):
            if idle_period > self._break_even:
                return command_if_needed(view, self.sleep_mode)
            return command_if_needed(view, None)
        # Already down (or going down): schedule the pre-wake so the mean
        # wake-up completes as the request arrives.
        prewake_in = idle_period - self._wake_latency
        if prewake_in <= 0:
            return command_if_needed(view, self.active_mode)
        return command_if_needed(view, None, recheck_after=prewake_in)