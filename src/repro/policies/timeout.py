"""Timeout power-management policies (Section V's heuristic comparators).

A timeout policy "deactivates the server ``n`` seconds after it becomes
idle" and reactivates it on the next arrival. Figure 5 compares three
variants: a fixed 1-second timeout, a timeout equal to the mean
inter-arrival time, and one equal to half of it -- all constructed here
with a plain constructor argument.

Timeout policies are *not* stationary Markov policies (the decision
depends on elapsed idle time), so they exist only on the simulator side;
they are expressed through the timer mechanism of the policy interface:
when the system goes idle the policy asks to be re-invoked after the
remaining timeout, and the simulator silently discards the timer if
anything happens first.

:class:`MultiLevelTimeoutPolicy` generalizes to a cascade: after ``t1``
idle seconds drop to the first low-power mode, after ``t1 + t2`` to the
next, and so on -- the shape of real ACPI-style governors.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.dpm.service_provider import ServiceProvider
from repro.errors import InvalidPolicyError
from repro.policies.base import Decision, PowerManagementPolicy, SystemView
from repro.policies.helpers import command_if_needed


class TimeoutPolicy(PowerManagementPolicy):
    """Sleep after a fixed idle timeout; wake on arrival.

    Parameters
    ----------
    timeout:
        Idle seconds before powering down (0 behaves like greedy).
    provider:
        SP description for default mode choices.
    sleep_mode, active_mode:
        As in :class:`~repro.policies.npolicy.NPolicy`.
    """

    def __init__(
        self,
        timeout: float,
        provider: ServiceProvider,
        sleep_mode: Optional[str] = None,
        active_mode: Optional[str] = None,
    ) -> None:
        if timeout < 0:
            raise InvalidPolicyError(f"timeout must be >= 0, got {timeout}")
        self.timeout = float(timeout)
        self.sleep_mode = (
            sleep_mode if sleep_mode is not None else provider.deepest_sleep_mode()
        )
        self.active_mode = (
            active_mode if active_mode is not None else provider.fastest_active_mode()
        )
        if provider.is_active(self.sleep_mode):
            raise InvalidPolicyError(f"sleep mode {self.sleep_mode!r} is active")
        if not provider.is_active(self.active_mode):
            raise InvalidPolicyError(f"active mode {self.active_mode!r} is inactive")
        self._idle_since: Optional[float] = None

    @property
    def name(self) -> str:
        return f"TimeoutPolicy(t={self.timeout:g})"

    def reset(self) -> None:
        self._idle_since = None

    def decide(self, view: SystemView) -> Decision:
        if view.occupancy > 0:
            self._idle_since = None
            heading = (
                view.switch_target if view.switch_target is not None else view.mode
            )
            if not view.provider.is_active(heading):
                return command_if_needed(view, self.active_mode)
            return command_if_needed(view, None)
        # Idle. Start (or continue) the countdown while the server is up.
        heading = view.switch_target if view.switch_target is not None else view.mode
        if not view.provider.is_active(heading):
            return command_if_needed(view, None)  # already down or going down
        if self._idle_since is None:
            self._idle_since = view.time
        remaining = self._idle_since + self.timeout - view.time
        # Epsilon guards against a timer firing a rounding error early
        # and re-requesting an infinitesimal recheck forever.
        if remaining <= 1e-9 * max(1.0, abs(view.time)):
            return command_if_needed(view, self.sleep_mode)
        return command_if_needed(view, None, recheck_after=remaining)


class MultiLevelTimeoutPolicy(PowerManagementPolicy):
    """Cascade through progressively deeper modes while idle.

    Parameters
    ----------
    stages:
        ``[(mode, idle_seconds), ...]`` ordered shallow to deep: the
        policy enters ``stages[k][0]`` once the system has been idle for
        ``sum(idle_seconds[:k+1])``. Modes must be inactive.
    provider:
        SP description.
    active_mode:
        Wake-up target on arrival.
    """

    def __init__(
        self,
        stages: Sequence[Tuple[str, float]],
        provider: ServiceProvider,
        active_mode: Optional[str] = None,
    ) -> None:
        if not stages:
            raise InvalidPolicyError("need at least one (mode, timeout) stage")
        cumulative = 0.0
        self._thresholds: List[Tuple[float, str]] = []
        for mode, idle_seconds in stages:
            if provider.is_active(mode):
                raise InvalidPolicyError(f"stage mode {mode!r} is active")
            if idle_seconds < 0:
                raise InvalidPolicyError(
                    f"stage timeout must be >= 0, got {idle_seconds}"
                )
            cumulative += float(idle_seconds)
            self._thresholds.append((cumulative, mode))
        self.active_mode = (
            active_mode if active_mode is not None else provider.fastest_active_mode()
        )
        if not provider.is_active(self.active_mode):
            raise InvalidPolicyError(f"active mode {self.active_mode!r} is inactive")
        self._idle_since: Optional[float] = None

    @property
    def name(self) -> str:
        chain = "->".join(mode for _, mode in self._thresholds)
        return f"MultiLevelTimeoutPolicy({chain})"

    def reset(self) -> None:
        self._idle_since = None

    def decide(self, view: SystemView) -> Decision:
        if view.occupancy > 0:
            self._idle_since = None
            heading = (
                view.switch_target if view.switch_target is not None else view.mode
            )
            if not view.provider.is_active(heading):
                return command_if_needed(view, self.active_mode)
            return command_if_needed(view, None)
        if self._idle_since is None:
            self._idle_since = view.time
        idle_for = view.time - self._idle_since
        # The epsilon absorbs floating-point undershoot when a timer
        # fires "exactly" at a threshold; without it the policy would
        # re-request ever-smaller rechecks forever.
        epsilon = 1e-9 * max(1.0, abs(view.time))
        desired: Optional[str] = None
        next_threshold: Optional[float] = None
        for threshold, mode in self._thresholds:
            if idle_for >= threshold - epsilon:
                desired = mode
            elif next_threshold is None:
                next_threshold = threshold
        recheck = None if next_threshold is None else next_threshold - idle_for
        return command_if_needed(view, desired, recheck_after=recheck)
