"""The greedy heuristic of Section V.

"A greedy algorithm which deactivates (activates) the server as soon as
the queue is empty (the queue is not empty)" -- i.e. the N-policy with
``N = 1``.
"""

from __future__ import annotations

from typing import Optional

from repro.dpm.service_provider import ServiceProvider
from repro.policies.npolicy import NPolicy


class GreedyPolicy(NPolicy):
    """Sleep the instant the system empties; wake on the first arrival."""

    def __init__(
        self,
        provider: ServiceProvider,
        sleep_mode: Optional[str] = None,
        active_mode: Optional[str] = None,
    ) -> None:
        super().__init__(1, provider, sleep_mode=sleep_mode, active_mode=active_mode)

    @property
    def name(self) -> str:
        return "GreedyPolicy"
