"""Shared policy plumbing.

:func:`command_if_needed` turns a *desired* SP trajectory into the
minimal command: issue nothing when the provider is already in (or
already switching to) the desired mode, except at transfer decision
points where an explicit "stay" is meaningful (it resolves the transfer
instantly). Keeping this in one place makes PM-command counts
comparable across policies.
"""

from __future__ import annotations

from typing import Optional

from repro.policies.base import Decision, SystemView


def command_if_needed(
    view: SystemView,
    desired: Optional[str],
    recheck_after: Optional[float] = None,
) -> Decision:
    """Build the minimal :class:`Decision` steering toward *desired*."""
    if desired is None:
        return Decision(recheck_after=recheck_after)
    if view.in_transfer:
        # Transfer point: an explicit command (even "stay") is the
        # decision; the simulator treats a missing command as "stay".
        return Decision(command=desired, recheck_after=recheck_after)
    heading = view.switch_target if view.switch_target is not None else view.mode
    if desired == heading:
        return Decision(recheck_after=recheck_after)
    return Decision(command=desired, recheck_after=recheck_after)
