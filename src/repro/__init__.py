"""repro -- CTMDP-based dynamic power management.

A production-quality reproduction of Qiu & Pedram, "Dynamic Power
Management Based on Continuous-Time Markov Decision Processes"
(DAC 1999), built from first principles:

- :mod:`repro.markov` -- continuous-time Markov chain substrate;
- :mod:`repro.ctmdp` -- CTMDP solvers (policy iteration, value
  iteration, occupation-measure LP, discounted);
- :mod:`repro.dpm` -- the paper's SP/SQ/SR system model with transfer
  states, cost model, analytic evaluation, and the policy-optimization
  workflow;
- :mod:`repro.policies` -- event-driven power managers (CTMDP-optimal,
  N-policy, greedy, timeout, always-on, oracle);
- :mod:`repro.sim` -- the event-driven system simulator;
- :mod:`repro.queueing` -- closed-form queueing results for
  cross-validation;
- :mod:`repro.experiments` -- drivers regenerating the paper's
  Figure 4, Table 1, and Figure 5;
- :mod:`repro.obs` -- observability: mergeable metrics registries,
  span traces, run manifests, logging (no-op unless activated).

Quickstart::

    from repro.dpm import paper_system, optimize_weighted

    model = paper_system()
    result = optimize_weighted(model, weight=1.0)
    print(result.metrics.average_power, result.metrics.average_queue_length)
"""

__version__ = "1.0.0"

from repro.errors import (
    DomainError,
    InfeasibleConstraintError,
    InvalidGeneratorError,
    InvalidModelError,
    InvalidPolicyError,
    ModelRejectedError,
    NotIrreducibleError,
    ReproError,
    SimulationError,
    SolverError,
)

__all__ = [
    "DomainError",
    "InfeasibleConstraintError",
    "InvalidGeneratorError",
    "InvalidModelError",
    "InvalidPolicyError",
    "ModelRejectedError",
    "NotIrreducibleError",
    "ReproError",
    "SimulationError",
    "SolverError",
    "__version__",
]
