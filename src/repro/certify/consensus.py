"""Cross-backend N-version consensus certificates.

Independent evidence source #4: the repo carries several policy
evaluation lowerings -- the reference dict-loop path, the dense
compiled lowering, and the CSR sparse path -- that share no numerical
kernel beyond BLAS. Each one evaluates the certified policy's gain on
the same model; the votes are compared against their median so a
single wandering backend cannot shift the consensus it is judged
against. Certification demands *unanimity*: any backend straying
beyond tolerance is a typed ``backend-disagreement`` finding, because
a split vote means at least one production code path would serve a
different number than the one being certified.

Randomized policies are out of scope (the sparse path evaluates
deterministic policies only), and the Kronecker backend evaluates
factored models, which the flattened SYS product model is not; both
limits are recorded on the check rather than silently narrowing it.
"""

from __future__ import annotations

from typing import Any, Dict, List

import numpy as np

from repro.certify.report import CertFinding, CheckResult
from repro.ctmdp.policy import evaluate_policy

#: Evaluation backends that can all score a deterministic policy on a
#: densely built model. ``kron`` needs a factored model and is noted as
#: out of scope on every report.
CONSENSUS_BACKENDS = ("reference", "compiled", "sparse")


def check_consensus(
    mdp,
    policy,
    tolerance: float,
    scale: float,
) -> CheckResult:
    """Evaluate *policy* on every backend and demand unanimous gains."""
    if hasattr(policy, "distribution"):
        return CheckResult(
            name="consensus",
            status="skipped",
            data={
                "reason": "randomized policy: the sparse backend evaluates "
                "deterministic policies only"
            },
        )
    findings: "List[CertFinding]" = []
    gains: "Dict[str, float]" = {}
    errors: "Dict[str, str]" = {}
    for backend in CONSENSUS_BACKENDS:
        try:
            evaluation = evaluate_policy(
                policy, backend=backend, compute_stationary=False
            )
            gains[backend] = float(evaluation.gain)
        except Exception as exc:  # one dead backend is itself a finding
            errors[backend] = f"{type(exc).__name__}: {exc}"
    data: "Dict[str, Any]" = {
        "backends": list(CONSENSUS_BACKENDS),
        "gains": dict(gains),
        "kron": "skipped: SYS models are built dense, not Kronecker-factored",
    }
    if errors:
        data["errors"] = errors
        for backend, message in errors.items():
            findings.append(
                CertFinding(
                    code="backend-disagreement",
                    message=f"backend {backend!r} failed to evaluate the "
                    f"policy: {message}",
                )
            )
    if len(gains) >= 2:
        median = float(np.median(list(gains.values())))
        data["median_gain"] = median
        data["max_spread"] = float(
            max(gains.values()) - min(gains.values())
        )
        for backend, gain in sorted(gains.items()):
            deviation = abs(gain - median)
            if deviation > tolerance * scale:
                findings.append(
                    CertFinding(
                        code="backend-disagreement",
                        message=f"backend {backend!r} reports gain "
                        f"{gain:.12g}, {deviation:.3e} from the "
                        f"{len(gains)}-backend median {median:.12g}",
                        value=deviation,
                    )
                )
    elif not errors:
        # Fewer than two live backends cannot form a consensus.
        findings.append(
            CertFinding(
                code="backend-disagreement",
                message=f"only {len(gains)} backend(s) produced a gain; "
                "consensus needs at least two",
            )
        )
    status = "failed" if findings else "passed"
    return CheckResult(
        name="consensus", status=status, findings=findings, data=data
    )
