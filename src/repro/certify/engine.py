"""The certification engine: independent evidence, one verdict.

:func:`certify_solution` takes any solved ``(model, weight, policy,
claimed metrics)`` and runs up to four evidence sources that never
reuse the solver under test -- Bellman residuals
(:mod:`repro.certify.bellman`), LP duality
(:mod:`repro.certify.duality`), exact rational arithmetic
(:mod:`repro.certify.exact`), and cross-backend consensus
(:mod:`repro.certify.consensus`) -- and folds them into one
:class:`~repro.certify.report.CertificationReport`.

Failure containment mirrors the serve pipeline: a check that *cannot
run* (singular evaluation, LP solver failure) becomes a *failed* check
with a typed ``<name>-error`` finding, never an exception out of the
engine -- an uncheckable policy is an uncertified policy. Only
misconfiguration (a constrained result without its bounds, an artifact
for a different model) raises :class:`~repro.errors.CertificationError`.

Observability: each check runs under a ``certify.<name>`` span, and
``certify.runs`` / ``certify.certified`` / ``certify.failed`` plus
``certify.checks.{passed,failed,skipped}`` counters flow through the
ambient :mod:`repro.obs` context.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.certify import bellman as _bellman
from repro.certify import consensus as _consensus
from repro.certify import duality as _duality
from repro.certify import exact as _exact
from repro.certify.report import (
    CertFinding,
    CertificationReport,
    CheckResult,
    policy_table_checksum,
)
from repro.dpm.cost import POWER
from repro.errors import (
    CertificationError,
    CertificationFailedError,
    InvalidPolicyError,
    ReproError,
)
from repro.obs.runtime import active as obs_active

#: Default relative certification tolerance. Gains are O(1)-O(10) watts
#: on the paper's models and every evidence source agrees to ~1e-9, so
#: 1e-6 leaves three orders of headroom on both sides of the corrupted
#: corpus (whose gain shifts are O(0.01) and up).
DEFAULT_TOLERANCE = 1e-6

#: Exact rational arithmetic is O(n^3) Fraction operations -- run it by
#: default only below this state count (the paper's SYS model has 23).
EXACT_STATE_LIMIT = 200

#: The canonical check order; ``checks=`` subsets preserve it.
CHECK_NAMES = ("bellman", "lp", "exact", "consensus")


def _metric(claimed, name: str) -> "Optional[float]":
    """Read a named metric off a mapping or an AnalyticMetrics object."""
    if claimed is None:
        return None
    if isinstance(claimed, Mapping):
        value = claimed.get(name)
    else:
        value = getattr(claimed, name, None)
    return float(value) if value is not None else None


def _claimed_gain(claimed, weight: float) -> "Optional[float]":
    """The claimed weighted gain: ``avg_power + w * avg_queue_length``.

    The optimizer folds switching energy into the power channel, so
    this reconstruction matches the solver's internal objective to
    round-off (verified by the engine tests).
    """
    power = _metric(claimed, "average_power")
    queue = _metric(claimed, "average_queue_length")
    if power is None or queue is None:
        return None
    return power + weight * queue


def certify_solution(
    model,
    policy,
    weight: "Optional[float]" = None,
    claimed_metrics=None,
    constraints: "Optional[Mapping[str, float]]" = None,
    tolerance: float = DEFAULT_TOLERANCE,
    checks: "Sequence[str]" = CHECK_NAMES,
    exact_state_limit: int = EXACT_STATE_LIMIT,
    artifact_checksum: "Optional[str]" = None,
) -> CertificationReport:
    """Certify one solved policy with independent evidence.

    Parameters
    ----------
    model:
        The :class:`~repro.dpm.system.PowerManagedSystemModel` the
        policy was solved on (at its solved arrival rate).
    policy:
        A :class:`~repro.ctmdp.policy.Policy`,
        :class:`~repro.ctmdp.policy.RandomizedPolicy`, or a plain
        ``{state: action}`` assignment.
    weight:
        The performance weight of the solve (``None`` selects
        constrained mode, which then requires *constraints*).
    claimed_metrics:
        What the solver under test reported (an ``AnalyticMetrics`` or
        a mapping with ``average_power`` / ``average_queue_length``);
        certification checks the claim against independent evidence.
    constraints:
        ``{extra_cost_name: bound}`` for Section-IV constrained solves.
    checks:
        Subset of :data:`CHECK_NAMES` to run, canonical order kept.

    Returns the report; never raises for a *failed* certification --
    use :func:`require_certified` for raise-on-failure semantics.
    """
    unknown = sorted(set(checks) - set(CHECK_NAMES))
    if unknown:
        raise CertificationError(
            f"unknown certification checks {unknown}; valid: {CHECK_NAMES}"
        )
    if weight is None and constraints is None:
        raise CertificationError(
            "certification needs the solve's objective: pass weight= for "
            "weighted solves or constraints= for constrained solves"
        )
    if tolerance <= 0 or not np.isfinite(tolerance):
        raise CertificationError(
            f"tolerance must be finite and positive, got {tolerance!r}"
        )

    mode = "constrained" if constraints is not None else "weighted"
    build_weight = 0.0 if mode == "constrained" else float(weight)
    mdp = model.build_ctmdp(build_weight)

    ins = obs_active()
    metrics = ins.metrics if ins.enabled else None
    if metrics is not None:
        metrics.counter("certify.runs").inc()

    claimed: "Dict[str, float]" = {}
    if mode == "weighted":
        claimed_gain = _claimed_gain(claimed_metrics, float(weight))
        if claimed_gain is not None:
            claimed["gain"] = claimed_gain
    else:
        claimed_gain = _metric(claimed_metrics, "average_power")
        if claimed_gain is not None:
            claimed["average_power"] = claimed_gain
        for name, bound in constraints.items():
            claimed[f"constraint:{name}"] = float(bound)

    fingerprint = _try_fingerprint(model)

    # An invalid policy table (unknown state/action) fails certification
    # with a typed finding instead of raising -- the adversarial corpus
    # contains exactly such members.
    try:
        policy_obj = _as_policy(mdp, policy)
    except InvalidPolicyError as exc:
        failed = CheckResult(
            name="policy",
            status="failed",
            findings=[
                CertFinding(
                    code="invalid-policy",
                    message=f"policy table is invalid for the model: {exc}",
                )
            ],
        )
        report = CertificationReport(
            mode=mode,
            rate=float(model.requestor.rate),
            weight=None if mode == "constrained" else float(weight),
            n_states=mdp.n_states,
            tolerance=float(tolerance),
            claimed=claimed,
            checks=[failed],
            policy_checksum="invalid",
            fingerprint=fingerprint,
            artifact_checksum=artifact_checksum,
        )
        _count_report(metrics, report)
        return report

    scale = max(1.0, abs(claimed_gain)) if claimed_gain is not None else 1.0
    gain_cache: "Dict[str, float]" = {}

    def policy_gain() -> float:
        """Independent evaluation of the policy's own objective (cached)."""
        if "gain" not in gain_cache:
            if mode == "weighted":
                gain, _, _ = _bellman.independent_evaluation(mdp, policy_obj)
            else:
                gain = _duality._policy_average(
                    mdp, policy_obj, policy_obj.extra_cost_vector(POWER)
                )
            gain_cache["gain"] = gain
        return gain_cache["gain"]

    results: "List[CheckResult]" = []
    for name in CHECK_NAMES:
        if name not in checks:
            continue
        with ins.span(f"certify.{name}", mode=mode):
            try:
                results.append(
                    _run_check(
                        name,
                        mode,
                        mdp,
                        policy_obj,
                        claimed_gain,
                        constraints,
                        tolerance,
                        scale,
                        exact_state_limit,
                        policy_gain,
                    )
                )
            except (ReproError, np.linalg.LinAlgError) as exc:
                results.append(
                    CheckResult(
                        name=name,
                        status="failed",
                        findings=[
                            CertFinding(
                                code=f"{name}-error",
                                message=f"{name} check could not run: "
                                f"{type(exc).__name__}: {exc}",
                            )
                        ],
                    )
                )

    report = CertificationReport(
        mode=mode,
        rate=float(model.requestor.rate),
        weight=None if mode == "constrained" else float(weight),
        n_states=mdp.n_states,
        tolerance=float(tolerance),
        claimed=claimed,
        checks=results,
        policy_checksum=policy_table_checksum(mdp, policy_obj),
        fingerprint=fingerprint,
        artifact_checksum=artifact_checksum,
    )
    _count_report(metrics, report)
    return report


def _run_check(
    name: str,
    mode: str,
    mdp,
    policy_obj,
    claimed_gain: "Optional[float]",
    constraints: "Optional[Mapping[str, float]]",
    tolerance: float,
    scale: float,
    exact_state_limit: int,
    policy_gain,
) -> CheckResult:
    if name == "bellman":
        if mode == "constrained":
            return CheckResult(
                name="bellman",
                status="skipped",
                data={
                    "reason": "constrained optima need not satisfy the "
                    "unconstrained optimality equations; the constrained "
                    "LP is the oracle instead"
                },
            )
        return _bellman.check_bellman(
            mdp, policy_obj, claimed_gain, tolerance, scale
        )
    if name == "lp":
        if mode == "constrained":
            return _duality.check_lp_constrained(
                mdp,
                policy_obj,
                POWER,
                constraints,
                claimed_gain,
                tolerance,
                scale,
            )
        return _duality.check_lp(mdp, policy_obj, policy_gain(), tolerance, scale)
    if name == "exact":
        if mdp.n_states > exact_state_limit:
            return CheckResult(
                name="exact",
                status="skipped",
                data={
                    "reason": f"{mdp.n_states} states exceeds the exact-"
                    f"arithmetic limit of {exact_state_limit}"
                },
            )
        return _exact.check_exact(
            mdp, policy_obj, policy_gain(), tolerance, scale
        )
    if name == "consensus":
        return _consensus.check_consensus(mdp, policy_obj, tolerance, scale)
    raise CertificationError(f"unknown check {name!r}")  # pragma: no cover


def _as_policy(mdp, policy):
    """Normalize the policy input; validates plain assignments."""
    from repro.ctmdp.policy import Policy, RandomizedPolicy

    if isinstance(policy, (Policy, RandomizedPolicy)):
        return policy
    return Policy(mdp, dict(policy))


def _try_fingerprint(model) -> "Optional[str]":
    from repro.serve.artifact import model_fingerprint

    try:
        return model_fingerprint(model)
    except ReproError:  # models outside the serve pipeline's shape
        return None


def _count_report(metrics, report: CertificationReport) -> None:
    if metrics is None:
        return
    metrics.counter(
        "certify.certified" if report.certified else "certify.failed"
    ).inc()
    for check in report.checks:
        metrics.counter(f"certify.checks.{check.status}").inc()


def certify_result(
    model,
    result,
    constraints: "Optional[Mapping[str, float]]" = None,
    **kwargs,
) -> CertificationReport:
    """Certify an :class:`~repro.dpm.optimizer.OptimizationResult`.

    Weighted results carry their weight; constrained results
    (``result.weight is None``) need their bounds passed explicitly --
    the result object does not record them.
    """
    if result.weight is None and constraints is None:
        raise CertificationError(
            "constrained result: pass the constraints= bounds it was "
            "solved under (e.g. {'queue_length': 1.0})"
        )
    return certify_solution(
        model,
        result.policy,
        weight=result.weight,
        claimed_metrics=result.metrics,
        constraints=constraints,
        **kwargs,
    )


def certify_artifact(artifact, model, **kwargs) -> CertificationReport:
    """Certify a serve :class:`~repro.serve.artifact.PolicyArtifact`.

    Re-rates *model* to the artifact's arrival rate, checks the model
    fingerprint binding, and certifies the artifact's policy table
    against its own claimed metrics. The returned report carries
    ``artifact_checksum`` so the certificate is bound to that exact
    artifact file.
    """
    from repro.dpm.adaptive import rated_model
    from repro.serve.artifact import model_fingerprint

    expected = model_fingerprint(model)
    if artifact.fingerprint != expected:
        raise CertificationError(
            f"artifact fingerprint {artifact.fingerprint[:12]}... does not "
            f"match the serving model {expected[:12]}...; refusing to "
            "certify a policy for a different system"
        )
    rated = rated_model(model, artifact.rate)
    return certify_solution(
        rated,
        artifact.assignment(),
        weight=artifact.weight,
        claimed_metrics=artifact.metrics,
        artifact_checksum=artifact.checksum,
        **kwargs,
    )


def require_certified(report: CertificationReport) -> CertificationReport:
    """Return *report* if certified, else raise with its findings."""
    if report.certified:
        return report
    codes = ", ".join(report.finding_codes) or "no check ran"
    raise CertificationFailedError(
        f"policy failed certification ({codes})", report=report
    )
