"""Solution certification: independent proof-carrying policies.

The paper's value proposition is *exact* optimality of the solved
CTMDP policy; this package independently verifies that claim after
every solve and before any policy reaches serving. See DESIGN §14 for
the certificate format and the serve-pipeline gate.
"""

from repro.certify.bellman import (
    check_bellman,
    independent_evaluation,
    suboptimality_gap,
)
from repro.certify.consensus import CONSENSUS_BACKENDS, check_consensus
from repro.certify.corpus import CORRUPTION_KINDS, CorruptedPolicy, build_corpus
from repro.certify.duality import check_lp, check_lp_constrained
from repro.certify.engine import (
    CHECK_NAMES,
    DEFAULT_TOLERANCE,
    EXACT_STATE_LIMIT,
    certify_artifact,
    certify_result,
    certify_solution,
    require_certified,
)
from repro.certify.exact import check_exact, exact_generator, exact_stationary
from repro.certify.report import (
    CERT_SCHEMA,
    CertFinding,
    CertificationReport,
    CheckResult,
    policy_table_checksum,
)

__all__ = [
    "CERT_SCHEMA",
    "CHECK_NAMES",
    "CONSENSUS_BACKENDS",
    "CORRUPTION_KINDS",
    "DEFAULT_TOLERANCE",
    "EXACT_STATE_LIMIT",
    "CertFinding",
    "CertificationReport",
    "CheckResult",
    "CorruptedPolicy",
    "build_corpus",
    "certify_artifact",
    "certify_result",
    "certify_solution",
    "check_bellman",
    "check_consensus",
    "check_exact",
    "check_lp",
    "check_lp_constrained",
    "exact_generator",
    "exact_stationary",
    "independent_evaluation",
    "policy_table_checksum",
    "require_certified",
    "suboptimality_gap",
]
