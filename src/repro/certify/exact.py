"""Exact-arithmetic re-verification with :mod:`fractions`.

Independent evidence source #3: every IEEE-754 double is an exact
rational, so the policy's induced chain can be re-solved in
:class:`fractions.Fraction` arithmetic with *zero* rounding error.
Gaussian elimination over the rationals either produces the exact
stationary distribution of the induced chain -- whose global balance,
non-negativity, and normalization are then checked bit-exactly -- or
proves the chain is not unichain (singular balance system).

Off-diagonal rates are the primary data; diagonals are recomputed
exactly as the negated row sum (Eqn. 2.4), since a float diagonal may
conserve only to round-off. The one necessarily approximate step is
the final comparison of the exact gain against the solver's claimed
float gain, which uses the certificate tolerance.

Cost: elimination over Fractions is O(n^3) in *rational* operations --
milliseconds for the paper's 23-state SYS model, so the engine runs it
by default below :data:`repro.certify.engine.EXACT_STATE_LIMIT`.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any, Dict, List, Optional

import numpy as np

from repro.certify.report import CertFinding, CheckResult
from repro.dpm.verification import is_unichain


def exact_generator(generator: np.ndarray) -> "List[List[Fraction]]":
    """Lift a float generator to exact rationals, re-deriving diagonals.

    Off-diagonal entries convert exactly (every float is rational);
    each diagonal is replaced by the exact negated sum of its row's
    off-diagonals so the rows conserve *exactly*, not just to
    round-off.
    """
    n = generator.shape[0]
    rows: "List[List[Fraction]]" = []
    for i in range(n):
        row = [
            Fraction(float(generator[i, j])) if j != i else Fraction(0)
            for j in range(n)
        ]
        row[i] = -sum(row)
        rows.append(row)
    return rows


def exact_stationary(
    rows: "List[List[Fraction]]",
) -> "Optional[List[Fraction]]":
    """Solve ``pi G = 0``, ``sum(pi) = 1`` exactly; ``None`` if singular.

    Eliminates on ``G^T`` with the last equation replaced by the
    normalization row. Pivoting picks the largest-magnitude entry --
    irrelevant for exactness, but it keeps intermediate numerators and
    denominators small.
    """
    n = len(rows)
    # Augmented [G^T | 0] with the final row replaced by [1 ... 1 | 1].
    a = [[rows[j][i] for j in range(n)] + [Fraction(0)] for i in range(n)]
    a[n - 1] = [Fraction(1)] * n + [Fraction(1)]
    for col in range(n):
        pivot = max(range(col, n), key=lambda r: abs(a[r][col]))
        if a[pivot][col] == 0:
            return None
        a[col], a[pivot] = a[pivot], a[col]
        for r in range(n):
            if r != col and a[r][col] != 0:
                factor = a[r][col] / a[col][col]
                a[r] = [x - factor * y for x, y in zip(a[r], a[col])]
    return [a[i][n] / a[i][i] for i in range(n)]


def check_exact(
    mdp,
    policy,
    reference_gain: "Optional[float]",
    tolerance: float,
    scale: float,
) -> CheckResult:
    """Bit-exact certificate for the policy's induced chain."""
    findings = []
    generator = policy.generator_matrix()
    rows = exact_generator(generator)
    data: "Dict[str, Any]" = {
        "diagonal_drift": float(
            max(
                abs(float(rows[i][i]) - generator[i, i])
                for i in range(len(rows))
            )
        ),
    }

    unichain = is_unichain(generator)
    data["unichain"] = unichain
    if not unichain:
        findings.append(
            CertFinding(
                code="not-unichain",
                message="the policy's induced chain is not unichain: its "
                "long-run average depends on the start state, so no "
                "single gain certifies it",
            )
        )

    pi = exact_stationary(rows)
    if pi is None:
        findings.append(
            CertFinding(
                code="exact-balance-violated",
                message="the exact balance system is singular -- the "
                "induced chain has no unique stationary distribution",
            )
        )
        return CheckResult(
            name="exact", status="failed", findings=findings, data=data
        )

    # Re-substitute: pi G = 0 and sum(pi) = 1 must hold *bit-exactly*.
    n = len(rows)
    balance_ok = all(
        sum(pi[i] * rows[i][j] for i in range(n)) == 0 for j in range(n)
    )
    normalized = sum(pi) == 1
    nonnegative = all(p >= 0 for p in pi)
    data["balance_exact"] = balance_ok
    data["normalized_exact"] = normalized
    data["nonnegative"] = nonnegative
    if not (balance_ok and normalized and nonnegative):
        findings.append(
            CertFinding(
                code="exact-balance-violated",
                message="exact stationary re-substitution failed "
                f"(balance={balance_ok}, normalized={normalized}, "
                f"nonnegative={nonnegative})",
            )
        )

    exact_gain = sum(
        p * Fraction(float(c)) for p, c in zip(pi, policy.cost_vector())
    )
    data["exact_gain"] = float(exact_gain)
    if reference_gain is not None:
        drift = abs(float(exact_gain) - reference_gain)
        data["gain_drift"] = drift
        if drift > tolerance * scale:
            findings.append(
                CertFinding(
                    code="exact-gain-mismatch",
                    message=f"exact-arithmetic gain {float(exact_gain):.12g} "
                    f"disagrees with the claimed gain {reference_gain:.12g} "
                    f"by {drift:.3e}",
                    value=drift,
                )
            )

    status = "failed" if findings else "passed"
    return CheckResult(name="exact", status=status, findings=findings, data=data)
