"""``python -m repro.certify`` runs the adversarial corpus (CI entry)."""

from repro.certify.corpus import main

if __name__ == "__main__":
    raise SystemExit(main())
