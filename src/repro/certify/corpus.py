"""Seeded adversarial corpus: corrupted policies that must never certify.

Property-testing for the certification engine itself. Each corpus
member is a realistic corruption of a genuinely solved policy --

- ``action-flip``: one state's action swapped for a measurably worse
  alternative while the claimed metrics still describe the optimum
  (a torn artifact write, a bit-flipped table);
- ``gain-perturbation``: the optimal policy with its claimed average
  power nudged 1-10% (a stale or miscopied metrics block);
- ``stale-ghost``: a policy solved for a *different* operating point
  served with that point's metrics (the cross-solve reuse layer
  handing back a neighbor's solution without re-solving);
- ``invalid-action``: a table entry naming an action the state does
  not admit (schema-valid garbage).

The contract, enforced by tests and the CI ``certification`` job, is
*zero false certifications*: :func:`repro.certify.certify_solution`
must reject every member with a typed finding, at every seed.

Run directly for CI::

    python -m repro.certify.corpus --seed 0 --out certs/

exits non-zero if the honest baseline fails certification or any
corrupted member passes it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.certify import bellman as _bellman
from repro.certify.engine import certify_solution
from repro.certify.report import CertificationReport
from repro.dpm.adaptive import rated_model
from repro.dpm.optimizer import optimize_weighted
from repro.errors import CertificationError

#: Every corruption kind the corpus generates.
CORRUPTION_KINDS = (
    "action-flip",
    "gain-perturbation",
    "stale-ghost",
    "invalid-action",
)

#: Minimum gain degradation (relative to scale) an action flip must
#: cause to enter the corpus -- flips in zero-occupancy states can be
#: gain-neutral and legitimately certify.
FLIP_MARGIN = 1e-4


@dataclass(frozen=True)
class CorruptedPolicy:
    """One corpus member: a corrupted policy plus its (false) claim."""

    kind: str
    seed: int
    description: str
    assignment: "Dict[Hashable, Hashable]"
    weight: float
    claimed_metrics: "Dict[str, float]"

    def certify(self, model, **kwargs) -> CertificationReport:
        """Run the engine against this member (must come back failed)."""
        return certify_solution(
            model,
            self.assignment,
            weight=self.weight,
            claimed_metrics=self.claimed_metrics,
            **kwargs,
        )


def _claimed(metrics) -> "Dict[str, float]":
    return {
        "average_power": float(metrics.average_power),
        "average_queue_length": float(metrics.average_queue_length),
    }


def _flip_candidates(mdp, assignment, rng) -> "List[Tuple[Hashable, Hashable]]":
    candidates = [
        (state, action)
        for state in mdp.states
        for action in mdp.actions(state)
        if action != assignment[state]
    ]
    rng.shuffle(candidates)
    return candidates


def _action_flip(model, mdp, base, rng, seed) -> CorruptedPolicy:
    """Flip one action so the gain measurably degrades (or evaluation
    turns singular) while the claimed metrics still describe the
    optimum."""
    from repro.ctmdp.policy import Policy

    assignment = base.policy.as_dict()
    base_gain = (
        base.metrics.average_power
        + base.weight * base.metrics.average_queue_length
    )
    scale = max(1.0, abs(base_gain))
    for state, action in _flip_candidates(mdp, assignment, rng):
        corrupted = dict(assignment)
        corrupted[state] = action
        try:
            gain, _, _ = _bellman.independent_evaluation(
                mdp, Policy(mdp, corrupted)
            )
        except np.linalg.LinAlgError:
            degradation = float("inf")  # multichain: certifiably broken
        else:
            degradation = gain - base_gain
        if degradation > FLIP_MARGIN * scale:
            return CorruptedPolicy(
                kind="action-flip",
                seed=seed,
                description=f"state {state!r} flipped to {action!r} "
                f"(gain +{degradation:.3g})",
                assignment=corrupted,
                weight=base.weight,
                claimed_metrics=_claimed(base.metrics),
            )
    raise CertificationError(
        "no action flip degrades the gain measurably -- the corpus "
        "cannot corrupt this model"
    )


def _gain_perturbation(model, base, rng, seed) -> CorruptedPolicy:
    factor = 1.0 + float(rng.choice([-1.0, 1.0])) * float(
        rng.uniform(0.01, 0.1)
    )
    claimed = _claimed(base.metrics)
    claimed["average_power"] *= factor
    return CorruptedPolicy(
        kind="gain-perturbation",
        seed=seed,
        description=f"claimed average power scaled by {factor:.4f}",
        assignment=base.policy.as_dict(),
        weight=base.weight,
        claimed_metrics=claimed,
    )


def _stale_ghost(model, base, rng, seed) -> CorruptedPolicy:
    """A policy solved for a different operating point, served with
    that point's metrics -- the reuse-layer failure mode."""
    base_rate = model.requestor.rate
    ghosts = [
        (base_rate * 4.0, base.weight),
        (base_rate / 4.0, base.weight),
        (base_rate, base.weight * 8.0 + 5.0),
        (base_rate * 6.0, base.weight * 10.0 + 10.0),
    ]
    order = list(rng.permutation(len(ghosts)))
    for index in order:
        rate, weight = ghosts[index]
        ghost = optimize_weighted(rated_model(model, rate), weight)
        if ghost.policy.as_dict() != base.policy.as_dict():
            return CorruptedPolicy(
                kind="stale-ghost",
                seed=seed,
                description=f"policy for rate={rate:.4g}, w={weight:.4g} "
                f"served at rate={base_rate:.4g}, w={base.weight:.4g}",
                assignment=ghost.policy.as_dict(),
                weight=base.weight,
                claimed_metrics=_claimed(ghost.metrics),
            )
    raise CertificationError(
        "every ghost operating point yields the same policy -- the "
        "corpus cannot build a stale-ghost member for this model"
    )


def _invalid_action(model, mdp, base, rng, seed) -> CorruptedPolicy:
    assignment = base.policy.as_dict()
    states = list(mdp.states)
    state = states[int(rng.integers(len(states)))]
    valid = set(mdp.actions(state))
    foreign = sorted(
        {a for s in states for a in mdp.actions(s)} - valid, key=repr
    )
    bogus = foreign[0] if foreign else "__corrupt-mode__"
    corrupted = dict(assignment)
    corrupted[state] = bogus
    return CorruptedPolicy(
        kind="invalid-action",
        seed=seed,
        description=f"state {state!r} commands inadmissible {bogus!r}",
        assignment=corrupted,
        weight=base.weight,
        claimed_metrics=_claimed(base.metrics),
    )


def build_corpus(
    model,
    weight: float = 0.5,
    seed: int = 0,
    kinds: "Sequence[str]" = CORRUPTION_KINDS,
) -> "List[CorruptedPolicy]":
    """Solve *model* honestly, then corrupt the solution every way.

    Deterministic in ``(model, weight, seed)``; raises
    :class:`~repro.errors.CertificationError` if a requested corruption
    cannot be constructed (better loud than a silently empty corpus).
    """
    unknown = sorted(set(kinds) - set(CORRUPTION_KINDS))
    if unknown:
        raise CertificationError(
            f"unknown corruption kinds {unknown}; valid: {CORRUPTION_KINDS}"
        )
    rng = np.random.default_rng(seed)
    base = optimize_weighted(model, weight)
    mdp = model.build_ctmdp(weight)
    members: "List[CorruptedPolicy]" = []
    for kind in CORRUPTION_KINDS:
        if kind not in kinds:
            continue
        if kind == "action-flip":
            members.append(_action_flip(model, mdp, base, rng, seed))
        elif kind == "gain-perturbation":
            members.append(_gain_perturbation(model, base, rng, seed))
        elif kind == "stale-ghost":
            members.append(_stale_ghost(model, base, rng, seed))
        elif kind == "invalid-action":
            members.append(_invalid_action(model, mdp, base, rng, seed))
    return members


def main(argv: "Optional[Sequence[str]]" = None) -> int:
    """CI entry point: honest base must certify, every member must not."""
    import argparse
    import json
    import pathlib

    from repro.certify.engine import certify_result
    from repro.dpm.presets import paper_system

    parser = argparse.ArgumentParser(
        description="Run the adversarial certification corpus."
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--rate", type=float, default=1 / 6)
    parser.add_argument("--capacity", type=int, default=3)
    parser.add_argument("--weight", type=float, default=0.5)
    parser.add_argument(
        "--out", type=pathlib.Path, default=None,
        help="directory for certificate JSON artifacts",
    )
    args = parser.parse_args(argv)

    model = rated_model(paper_system(capacity=args.capacity), args.rate)
    base = optimize_weighted(model, args.weight)
    reports: "List[Tuple[str, CertificationReport]]" = [
        ("base", certify_result(model, base))
    ]
    for member in build_corpus(model, weight=args.weight, seed=args.seed):
        reports.append((member.kind, member.certify(model)))

    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
        for name, report in reports:
            path = args.out / f"seed{args.seed}-{name}.cert.json"
            path.write_text(json.dumps(report.to_document(), indent=2))

    failures = []
    for name, report in reports:
        want_certified = name == "base"
        ok = report.certified == want_certified
        print(
            f"{'OK  ' if ok else 'FAIL'} {name}: verdict={report.verdict} "
            f"findings={report.finding_codes}"
        )
        if not ok:
            failures.append(name)
    if failures:
        print(f"certification corpus FAILED: {failures}")
        return 1
    print(f"certification corpus passed at seed {args.seed}: "
          f"base certified, {len(reports) - 1} corruptions rejected")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by CI
    raise SystemExit(main())
