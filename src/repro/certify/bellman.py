"""Bellman-optimality residual certificates.

Independent evidence source #1: recompute the policy's gain and bias
straight from the raw generator/cost data with one dense linear solve
(no policy iteration, no value iteration, no warm starts), then check
the average-cost optimality equations action by action.

The suboptimality bound is a duality argument, not a heuristic. Let
``(g, h)`` solve the evaluation equations of the policy under test and

    eps = max(0, max_{i,a} (g - q_i(a))),
    q_i(a) = c_i(a) + sum_j s_ij(a) h_j.

Then ``(g - eps, h)`` satisfies ``g - eps <= q_i(a)`` for every
state-action pair, i.e. it is feasible for the dual of the
occupation-measure LP (whose optimum is the optimal gain ``g*``), so
``g* >= g - eps`` and the policy's suboptimality gap is at most
``eps``. A truly optimal policy produced by policy iteration has
``eps == 0`` up to floating-point noise.

``eps`` is an upper *bound*, though, and it can be loose: a policy that
is gain-optimal but takes an arbitrary action in a state that is
transient under it (the LP solver's deterministic rounding does exactly
this in zero-occupancy states) has a perfectly good gain yet a bias
that violates the optimality inequality there -- sometimes massively.
A violated bound therefore only *suggests* suboptimality. To turn the
suggestion into a proof the check exhibits a witness: the greedy policy
w.r.t. ``h``, independently evaluated. A strictly better gain is an
unconditional proof that the policy under test is suboptimal (fail);
no realizable improvement means the Bellman certificate simply cannot
be issued (the check abstains and the LP duality check, which compares
the gain against ``g*`` directly, carries the verdict).
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Optional, Tuple

import numpy as np

from repro.certify.report import CertFinding, CheckResult


def independent_evaluation(
    mdp, policy, reference_state_index: int = 0
) -> "Tuple[float, np.ndarray, float]":
    """Solve the policy's evaluation equations from raw model data.

    Returns ``(gain, bias, residual)`` where ``residual`` is
    ``max_i |c_i + (G h)_i - g|`` -- how well the claimed linear
    system is actually satisfied by the computed solution. Uses only
    ``numpy.linalg.solve`` on the bordered system

        [ G   -1 ] [h]   [-c]
        [ e_r  0 ] [g] = [ 0]

    so a singular system (the policy induces a multichain process)
    surfaces as ``numpy.linalg.LinAlgError`` for the engine to turn
    into a typed failure.
    """
    generator = policy.generator_matrix()
    costs = policy.cost_vector()
    n = generator.shape[0]
    bordered = np.zeros((n + 1, n + 1))
    bordered[:n, :n] = generator
    bordered[:n, n] = -1.0
    bordered[n, reference_state_index] = 1.0
    rhs = np.zeros(n + 1)
    rhs[:n] = -costs
    solution = np.linalg.solve(bordered, rhs)
    bias = solution[:n]
    gain = float(solution[n])
    residual = float(np.max(np.abs(costs + generator @ bias - gain)))
    return gain, bias, residual


def suboptimality_gap(
    mdp, bias: np.ndarray, gain: float
) -> "Tuple[float, Optional[Hashable], Optional[Hashable]]":
    """Bound the policy's distance from optimal via dual feasibility.

    Sweeps *every* state-action pair of the model -- including the
    ones the policy never takes -- and returns
    ``(eps, worst_state, worst_action)`` for the pair that most
    violates ``gain <= q_i(a)``. ``eps == 0`` means ``(gain, bias)``
    is already dual-feasible and the policy is certified optimal.
    """
    worst = 0.0
    worst_state: "Optional[Hashable]" = None
    worst_action: "Optional[Hashable]" = None
    for state, action in mdp.state_action_pairs():
        q = mdp.cost(state, action) + float(
            mdp.generator_row(state, action) @ bias
        )
        violation = gain - q
        if violation > worst:
            worst = violation
            worst_state = state
            worst_action = action
    return worst, worst_state, worst_action


def check_bellman(
    mdp,
    policy,
    claimed_gain: "Optional[float]",
    tolerance: float,
    scale: float,
) -> CheckResult:
    """Run the full Bellman-residual certificate for one policy."""
    findings = []
    gain, bias, residual = independent_evaluation(mdp, policy)
    data: "Dict[str, Any]" = {
        "gain": gain,
        "evaluation_residual": residual,
        "bias_span": float(np.max(bias) - np.min(bias)),
    }

    if not (np.isfinite(gain) and np.all(np.isfinite(bias))):
        findings.append(
            CertFinding(
                code="non-finite-value",
                message="independent evaluation produced a non-finite "
                "gain or bias",
                value=gain,
            )
        )
        return CheckResult(
            name="bellman", status="failed", findings=findings, data=data
        )

    if residual > tolerance * scale:
        findings.append(
            CertFinding(
                code="evaluation-residual",
                message=f"evaluation equations violated: residual "
                f"{residual:.3e} exceeds {tolerance * scale:.3e}",
                value=residual,
            )
        )

    eps, worst_state, worst_action = suboptimality_gap(mdp, bias, gain)
    data["suboptimality_gap"] = eps
    data["dual_feasible"] = bool(eps <= tolerance * scale)
    if worst_state is not None:
        data["worst_state"] = repr(worst_state)
        data["worst_action"] = repr(worst_action)
    inconclusive = False
    if eps > tolerance * scale:
        improvement, greedy_gain = _greedy_improvement(mdp, bias, gain)
        data["greedy_gain"] = greedy_gain
        data["greedy_improvement"] = improvement
        if improvement is not None and improvement > tolerance * scale:
            findings.append(
                CertFinding(
                    code="bellman-gap-exceeded",
                    message=f"policy is provably suboptimal: the greedy "
                    f"policy w.r.t. its own bias lowers the gain from "
                    f"{gain:.12g} to {greedy_gain:.12g} (improvement "
                    f"{improvement:.3e}; first violated at state "
                    f"{worst_state!r}, action {worst_action!r})",
                    state=repr(worst_state),
                    value=improvement,
                )
            )
        else:
            # The bound is violated but no one-step improvement is
            # realizable (typical of gain-optimal policies with
            # arbitrary actions in transient states, e.g. LP rounding).
            # Bellman evidence alone cannot certify this policy; the LP
            # duality check compares against g* directly and decides.
            inconclusive = True
            data["reason"] = (
                f"dual bound violated by {eps:.3e} but the greedy policy "
                "realizes no gain improvement; Bellman evidence is "
                "inconclusive (the LP duality check is the oracle)"
            )

    if claimed_gain is not None:
        drift = abs(gain - claimed_gain)
        data["claimed_gain"] = float(claimed_gain)
        data["claimed_gain_drift"] = drift
        if drift > tolerance * scale:
            findings.append(
                CertFinding(
                    code="claimed-gain-mismatch",
                    message=f"solver claimed gain {claimed_gain:.12g} but "
                    f"independent evaluation finds {gain:.12g} "
                    f"(drift {drift:.3e})",
                    value=drift,
                )
            )

    if findings:
        status = "failed"
    elif inconclusive:
        status = "skipped"
    else:
        status = "passed"
    return CheckResult(name="bellman", status=status, findings=findings, data=data)


def _greedy_improvement(
    mdp, bias: np.ndarray, gain: float
) -> "Tuple[Optional[float], Optional[float]]":
    """Evaluate the greedy policy w.r.t. *bias* as a suboptimality witness.

    Returns ``(improvement, greedy_gain)`` where ``improvement`` is how
    much the greedy policy lowers the gain (``None`` if its evaluation
    is singular -- no witness, no proof).
    """
    from repro.ctmdp.policy import Policy

    assignment = {}
    for state in mdp.states:
        assignment[state] = min(
            mdp.actions(state),
            key=lambda action: mdp.cost(state, action)
            + float(mdp.generator_row(state, action) @ bias),
        )
    try:
        greedy_gain, _, _ = independent_evaluation(
            mdp, Policy(mdp, assignment)
        )
    except np.linalg.LinAlgError:
        return None, None
    if not np.isfinite(greedy_gain):
        return None, float(greedy_gain)
    return gain - float(greedy_gain), float(greedy_gain)
