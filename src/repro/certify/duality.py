"""LP duality-gap certificates.

Independent evidence source #2: the occupation-measure LP of
:mod:`repro.ctmdp.linear_program` solves the same average-cost problem
by a completely different method (HiGHS simplex/IPM over stationary
state-action probabilities) than the dynamic-programming solvers under
test. Certifying against it is N-version programming at the *algorithm*
level: a bug would have to produce the same wrong number through two
unrelated optimality theories to slip through.

Weighted mode compares the policy's independently evaluated gain with
the LP optimum ``g*``: a correct solve has ``gain - g*`` within
round-off; a corrupted policy sits strictly above ``g*``, and a gain
*below* ``g*`` is impossible, so either direction is a typed failure.
Constrained mode (Section IV of the paper) re-solves the constrained
LP and checks both the objective gap and every constraint bound
against the policy's independently computed averages.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

import numpy as np

from repro.certify.report import CertFinding, CheckResult
from repro.ctmdp.linear_program import solve_average_cost_lp, solve_constrained_lp


def _policy_average(mdp, policy, cost_vector, reference_state_index=0) -> float:
    """Long-run average of an arbitrary cost vector under *policy*.

    Same bordered evaluation system as the Bellman check, but with a
    caller-supplied cost channel -- used to recompute a constrained
    policy's average power / average queue length without trusting the
    solver's claimed metrics.
    """
    generator = policy.generator_matrix()
    n = generator.shape[0]
    bordered = np.zeros((n + 1, n + 1))
    bordered[:n, :n] = generator
    bordered[:n, n] = -1.0
    bordered[n, reference_state_index] = 1.0
    rhs = np.zeros(n + 1)
    rhs[:n] = -np.asarray(cost_vector, dtype=float)
    return float(np.linalg.solve(bordered, rhs)[n])


def check_lp(
    mdp,
    policy,
    policy_gain: float,
    tolerance: float,
    scale: float,
) -> CheckResult:
    """Weighted-mode duality certificate: policy gain vs LP optimum."""
    findings = []
    lp = solve_average_cost_lp(mdp)
    gap = policy_gain - lp.gain
    data: "Dict[str, Any]" = {
        "lp_gain": lp.gain,
        "policy_gain": policy_gain,
        "duality_gap": gap,
        "lp_status": lp.status,
        "lp_internal_gap": lp.diagnostics.get("duality_gap"),
        "lp_iterations": lp.diagnostics.get("iterations"),
    }
    if gap > tolerance * scale:
        findings.append(
            CertFinding(
                code="lp-duality-gap",
                message=f"policy gain {policy_gain:.12g} exceeds the "
                f"independent LP optimum {lp.gain:.12g} by {gap:.3e} "
                "-- the policy is not optimal",
                value=gap,
            )
        )
    elif gap < -tolerance * scale:
        findings.append(
            CertFinding(
                code="lp-duality-gap",
                message=f"policy gain {policy_gain:.12g} is {-gap:.3e} "
                f"*below* the LP optimum {lp.gain:.12g}, which is "
                "impossible -- the evaluation and the LP disagree on "
                "the model",
                value=gap,
            )
        )
    status = "failed" if findings else "passed"
    return CheckResult(name="lp", status=status, findings=findings, data=data)


def check_lp_constrained(
    mdp,
    policy,
    objective: str,
    constraints: "Mapping[str, float]",
    claimed_objective: "Optional[float]",
    tolerance: float,
    scale: float,
) -> CheckResult:
    """Constrained-mode certificate: objective gap + bound satisfaction."""
    findings = []
    lp = solve_constrained_lp(mdp, objective, dict(constraints))
    objective_value = _policy_average(
        mdp, policy, policy.extra_cost_vector(objective)
    )
    gap = objective_value - lp.gain
    data: "Dict[str, Any]" = {
        "objective": objective,
        "objective_value": objective_value,
        "lp_objective": lp.gain,
        "duality_gap": gap,
        "lp_status": lp.status,
        "lp_internal_gap": lp.diagnostics.get("duality_gap"),
        "constraint_values": {},
    }
    if claimed_objective is not None:
        drift = abs(objective_value - claimed_objective)
        data["claimed_objective"] = float(claimed_objective)
        if drift > tolerance * scale:
            findings.append(
                CertFinding(
                    code="claimed-gain-mismatch",
                    message=f"solver claimed average {objective} "
                    f"{claimed_objective:.12g} but independent evaluation "
                    f"finds {objective_value:.12g} (drift {drift:.3e})",
                    value=drift,
                )
            )
    if abs(gap) > tolerance * scale:
        direction = "exceeds" if gap > 0 else "undershoots"
        findings.append(
            CertFinding(
                code="lp-duality-gap",
                message=f"policy's average {objective} "
                f"{objective_value:.12g} {direction} the constrained-LP "
                f"optimum {lp.gain:.12g} by {abs(gap):.3e}",
                value=gap,
            )
        )
    for name, bound in constraints.items():
        value = _policy_average(mdp, policy, policy.extra_cost_vector(name))
        data["constraint_values"][name] = value
        if value > float(bound) + tolerance * scale:
            findings.append(
                CertFinding(
                    code="lp-constraint-violated",
                    message=f"constraint {name} <= {float(bound):.12g} "
                    f"violated: policy averages {value:.12g}",
                    value=value - float(bound),
                )
            )
    status = "failed" if findings else "passed"
    return CheckResult(name="lp", status=status, findings=findings, data=data)
