"""The machine-checkable certificate format (schema ``repro-cert/v1``).

A :class:`CertificationReport` is the output of
:func:`repro.certify.engine.certify_solution`: one
:class:`CheckResult` per independent evidence source (Bellman
residual, LP duality, exact arithmetic, backend consensus), each
carrying typed :class:`CertFinding` entries when it fails. The report
serializes to a self-describing, checksummed JSON document so it can
be stored next to a serve artifact and re-verified on load -- the same
torn-write/hand-edit protection the policy artifact itself has.

The verdict rule is deliberately strict: a report is *certified* only
when no check failed **and** at least one check actually ran. A report
whose every check was skipped certifies nothing.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import CertificationError

#: Schema tag stamped on every certificate document.
CERT_SCHEMA = "repro-cert/v1"

#: Check states. ``skipped`` records *why* in the check's data and
#: never contributes to the verdict.
CHECK_STATUSES = ("passed", "failed", "skipped")


def _canonical_json(payload: "Dict[str, Any]") -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _checksum(payload: "Dict[str, Any]") -> str:
    body = {k: v for k, v in payload.items() if k != "checksum"}
    return hashlib.sha256(_canonical_json(body).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CertFinding:
    """One typed defect discovered by a certification check.

    ``code`` is a stable machine-matchable slug (e.g.
    ``bellman-gap-exceeded``, ``backend-disagreement``); ``state``
    names the offending state (its ``repr``) when the defect is
    localized, and ``value`` carries the offending magnitude.
    """

    code: str
    message: str
    state: "Optional[str]" = None
    value: "Optional[float]" = None

    def to_dict(self) -> "Dict[str, Any]":
        doc: "Dict[str, Any]" = {"code": self.code, "message": self.message}
        if self.state is not None:
            doc["state"] = self.state
        if self.value is not None:
            doc["value"] = float(self.value)
        return doc

    @classmethod
    def from_dict(cls, doc: "Dict[str, Any]") -> "CertFinding":
        return cls(
            code=str(doc["code"]),
            message=str(doc["message"]),
            state=doc.get("state"),
            value=doc.get("value"),
        )


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one independent evidence source.

    ``data`` holds the check's numeric evidence (gains, residuals,
    gaps, per-backend values) -- JSON-serializable by construction, so
    a certificate is auditable without re-running anything.
    """

    name: str
    status: str
    findings: "List[CertFinding]" = field(default_factory=list)
    data: "Dict[str, Any]" = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.status not in CHECK_STATUSES:
            raise CertificationError(
                f"check status must be one of {CHECK_STATUSES}, "
                f"got {self.status!r}"
            )

    def to_dict(self) -> "Dict[str, Any]":
        return {
            "name": self.name,
            "status": self.status,
            "findings": [f.to_dict() for f in self.findings],
            "data": dict(self.data),
        }

    @classmethod
    def from_dict(cls, doc: "Dict[str, Any]") -> "CheckResult":
        return cls(
            name=str(doc["name"]),
            status=str(doc["status"]),
            findings=[CertFinding.from_dict(f) for f in doc["findings"]],
            data=dict(doc["data"]),
        )


@dataclass(frozen=True)
class CertificationReport:
    """An a-posteriori optimality certificate for one solved policy.

    Attributes
    ----------
    mode:
        ``"weighted"`` (Eqn. 3.1 objective) or ``"constrained"``
        (Section IV).
    rate, weight:
        The operating point; ``weight`` is ``None`` in constrained
        mode.
    claimed:
        What the solver under test claimed (gain, objective value,
        metrics) -- the values the independent evidence was checked
        against.
    checks:
        One :class:`CheckResult` per evidence source, in run order.
    policy_checksum:
        SHA-256 over the canonical policy table, so the certificate is
        bound to one exact policy.
    fingerprint:
        The serving-model fingerprint when the model supports one.
    artifact_checksum:
        Checksum of the :class:`repro.serve.artifact.PolicyArtifact`
        this certificate covers (``None`` outside the serve pipeline).
    """

    mode: str
    rate: float
    weight: "Optional[float]"
    n_states: int
    tolerance: float
    claimed: "Dict[str, float]"
    checks: "List[CheckResult]"
    policy_checksum: str
    fingerprint: "Optional[str]" = None
    artifact_checksum: "Optional[str]" = None

    @property
    def certified(self) -> bool:
        """No check failed and at least one check actually ran."""
        return (
            all(c.status != "failed" for c in self.checks)
            and any(c.status == "passed" for c in self.checks)
        )

    @property
    def verdict(self) -> str:
        return "certified" if self.certified else "failed"

    @property
    def findings(self) -> "List[CertFinding]":
        """All findings across checks, in check order."""
        return [f for check in self.checks for f in check.findings]

    @property
    def finding_codes(self) -> "List[str]":
        return sorted({f.code for f in self.findings})

    def check(self, name: str) -> "Optional[CheckResult]":
        for result in self.checks:
            if result.name == name:
                return result
        return None

    # -- (de)serialization ----------------------------------------------------

    def _body(self) -> "Dict[str, Any]":
        return {
            "schema": CERT_SCHEMA,
            "verdict": self.verdict,
            "mode": self.mode,
            "rate": self.rate,
            "weight": self.weight,
            "n_states": self.n_states,
            "tolerance": self.tolerance,
            "claimed": dict(self.claimed),
            "checks": [c.to_dict() for c in self.checks],
            "policy_checksum": self.policy_checksum,
            "fingerprint": self.fingerprint,
            "artifact_checksum": self.artifact_checksum,
        }

    def to_document(self) -> "Dict[str, Any]":
        doc = self._body()
        doc["checksum"] = _checksum(doc)
        return doc

    @classmethod
    def from_document(cls, doc: "Dict[str, Any]") -> "CertificationReport":
        """Parse and integrity-check a loaded certificate document.

        Raises :class:`~repro.errors.CertificationError` on an unknown
        schema, a checksum mismatch, or a malformed document -- a
        corrupt certificate certifies nothing.
        """
        if not isinstance(doc, dict):
            raise CertificationError(
                f"certificate document must be an object, got "
                f"{type(doc).__name__}"
            )
        if doc.get("schema") != CERT_SCHEMA:
            raise CertificationError(
                f"unknown certificate schema {doc.get('schema')!r}; "
                f"expected {CERT_SCHEMA!r}"
            )
        stored = doc.get("checksum")
        if stored is None:
            raise CertificationError("certificate document has no checksum")
        expected = _checksum(doc)
        if stored != expected:
            raise CertificationError(
                "certificate checksum mismatch: stored "
                f"{str(stored)[:12]}..., computed {expected[:12]}... "
                "-- the file is corrupt or was edited by hand"
            )
        try:
            report = cls(
                mode=str(doc["mode"]),
                rate=float(doc["rate"]),
                weight=(
                    float(doc["weight"]) if doc["weight"] is not None else None
                ),
                n_states=int(doc["n_states"]),
                tolerance=float(doc["tolerance"]),
                claimed={str(k): float(v) for k, v in doc["claimed"].items()},
                checks=[CheckResult.from_dict(c) for c in doc["checks"]],
                policy_checksum=str(doc["policy_checksum"]),
                fingerprint=doc.get("fingerprint"),
                artifact_checksum=doc.get("artifact_checksum"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CertificationError(
                f"certificate document is malformed: {exc!r}"
            ) from exc
        if report.verdict != doc["verdict"]:
            raise CertificationError(
                f"certificate verdict {doc['verdict']!r} does not match "
                f"its own checks (recomputed {report.verdict!r})"
            )
        return report


def policy_table_checksum(mdp, policy) -> str:
    """SHA-256 binding a certificate to one exact policy table.

    Deterministic policies hash their ``(state, action)`` table in
    model state order; randomized policies hash the per-state action
    distributions (action-sorted). Plain assignment mappings hash like
    deterministic policies.
    """
    rows: "List[Any]" = []
    if hasattr(policy, "distribution"):
        for state in mdp.states:
            dist = policy.distribution(state)
            rows.append(
                [repr(state), sorted((repr(a), p) for a, p in dist.items())]
            )
    else:
        assignment = policy.as_dict() if hasattr(policy, "as_dict") else dict(policy)
        for state in mdp.states:
            rows.append([repr(state), repr(assignment[state])])
    return hashlib.sha256(
        _canonical_json({"table": rows}).encode("utf-8")
    ).hexdigest()
