"""Ambient instrumentation context -- a true no-op by default.

The observability layer is threaded through *every* hot path (solver
sweeps, simulator events, parallel fan-outs), so it must cost nothing
when nobody asked for it. Instead of plumbing registry/tracer
parameters through every signature, instrumented code reads the
module-level :func:`active` context:

    ins = active()
    if ins.enabled:
        ins.metrics.counter("sim.events").inc()

Disabled (the default), ``active()`` returns the shared
:data:`DISABLED` singleton whose ``enabled`` is ``False`` -- the guard
is one global read plus one attribute check, measured at nanoseconds
per event by ``benchmarks/test_bench_obs_overhead.py``. Hot loops hoist
``active()`` once and keep per-event work behind ``enabled`` /
``is not None`` checks.

:func:`instrument` activates a registry and/or tracer for a ``with``
block and restores the previous context on exit (re-entrant; nested
activations stack). Forked pool workers inherit the active context
through the process image; :mod:`repro.sim.parallel` gives each worker
a fresh registry under :func:`instrument` and merges the snapshots back
into the parent's context in input order.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer


class _NullSpan:
    """Shared do-nothing context manager for disabled tracing."""

    __slots__ = ("attrs",)

    def __init__(self) -> None:
        self.attrs: dict = {}

    def __enter__(self) -> "_NullSpan":
        self.attrs = {}
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Instrumentation:
    """A (metrics, tracer) pair; ``enabled`` iff either is present."""

    __slots__ = ("metrics", "tracer", "enabled")

    def __init__(
        self,
        metrics: "Optional[MetricsRegistry]" = None,
        tracer: "Optional[Tracer]" = None,
    ) -> None:
        self.metrics = metrics
        self.tracer = tracer
        self.enabled = metrics is not None or tracer is not None

    def span(self, name: str, **attrs):
        """A tracer span when tracing is active, else a shared no-op."""
        if self.tracer is not None:
            return self.tracer.span(name, **attrs)
        return _NULL_SPAN


#: The permanent disabled context returned by :func:`active` by default.
DISABLED = Instrumentation()

_active: Instrumentation = DISABLED


def active() -> Instrumentation:
    """The currently active instrumentation (never ``None``)."""
    return _active


@contextmanager
def instrument(
    metrics: "Optional[MetricsRegistry]" = None,
    tracer: "Optional[Tracer]" = None,
) -> "Iterator[Instrumentation]":
    """Activate *metrics*/*tracer* for the block; restores on exit."""
    global _active
    previous = _active
    _active = Instrumentation(metrics=metrics, tracer=tracer)
    try:
        yield _active
    finally:
        _active = previous
