"""Bench-trajectory tracking: canonical BENCH records + regression diffs.

The bench suites under ``benchmarks/`` each used to hand-roll a
"read JSON, set key, write JSON" appender, which left
``BENCH_*.json`` as bags of nested floats with no units, no provenance,
and no way to ask *did this get slower?*. This module gives the
trajectory three layers:

1. **A canonical schema** (``repro-bench/v1``). A bench file is one
   document: a ``manifest`` (who/what/where produced the numbers -- see
   :func:`repro.obs.export.run_manifest`), the raw nested ``suites``
   payloads exactly as the bench wrote them, and a flat ``metrics``
   block mapping dotted metric names to ``{value, unit, tolerance,
   direction}`` records -- the comparable surface.
2. **An appender**, :func:`record_suite`, the bench suites write
   through. It migrates legacy files in place, re-flattens the updated
   suite into ``metrics``, and stamps a fresh manifest.
3. **A noise-aware comparator**, :func:`compare`, plus the report
   renderer behind the ``repro bench-report`` CLI. Only metrics with a
   tolerance are *checked* (timings and byte counts by default --
   their unit is inferred from the ``_s``/``_ns``/``_bytes`` name
   suffix); counts, gains, and ratios are reported as informational so
   machine-dependent values (``cpu_count``, event totals) never fail a
   nightly run. Tiny absolute values are exempted via a per-unit noise
   floor: a 0.8ms phase jumping 30% is jitter, not a regression.

Legacy (pre-schema) files load transparently: the whole document is
flattened with default specs, so committed baselines from older
commits remain comparable.
"""

from __future__ import annotations

import fnmatch
import json
import math
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

#: Schema tag stamped on canonical bench documents.
BENCH_SCHEMA = "repro-bench/v1"

#: Default relative regression threshold for checked (timing) metrics;
#: the nightly backend-scaling gate the tentpole asks for is "fail on a
#: >20% slowdown".
DEFAULT_TIME_TOLERANCE = 0.20

#: unit -> (tolerance, direction, noise floor in the metric's unit).
#: ``None`` tolerance = informational (reported, never failed).
_UNIT_POLICY: "Dict[str, Tuple[Optional[float], str, float]]" = {
    "s": (DEFAULT_TIME_TOLERANCE, "lower", 0.05),
    "ns": (0.50, "lower", 5.0),
    "bytes": (DEFAULT_TIME_TOLERANCE, "lower", 1e6),
    "ratio": (None, "lower", 0.0),
    "count": (None, "both", 0.0),
    "value": (None, "both", 0.0),
}


def infer_unit(name: str) -> str:
    """Infer a metric's unit from its (dotted) name's leaf suffix."""
    leaf = name.rsplit(".", 1)[-1]
    if leaf == "s" or leaf.endswith("_s"):
        return "s"
    if leaf == "ns" or leaf.endswith("_ns"):
        return "ns"
    if leaf.endswith("_bytes"):
        return "bytes"
    if (
        leaf.endswith("_fraction")
        or leaf.endswith("_ratio")
        or "speedup" in leaf
        or leaf in ("budget", "tolerance")
    ):
        return "ratio"
    if leaf.startswith("n_") or leaf.endswith("_count") or leaf in (
        "iterations",
        "calls",
        "capacity",
        "level",
    ):
        return "count"
    return "value"


@dataclass
class MetricRecord:
    """One comparable bench metric."""

    name: str
    value: float
    unit: str = "value"
    #: Relative threshold beyond which a move in the *bad* direction is
    #: a regression; ``None`` = informational only.
    tolerance: "Optional[float]" = None
    #: "lower" = lower is better, "higher" = higher is better,
    #: "both" = any large move is flagged (when a tolerance is set).
    direction: str = "lower"
    #: Values below this (in the metric's unit) are treated as noise.
    floor: float = 0.0

    def to_dict(self) -> "Dict[str, Any]":
        out: "Dict[str, Any]" = {"value": self.value, "unit": self.unit}
        # Serialize whenever it differs from the unit default -- a
        # ``null`` here is an explicit demotion to informational and
        # must survive the load round-trip.
        default_tol = _UNIT_POLICY.get(self.unit, (None, "both", 0.0))[0]
        if self.tolerance != default_tol:
            out["tolerance"] = self.tolerance
        elif self.tolerance is not None:
            out["tolerance"] = self.tolerance
        if self.direction != "lower":
            out["direction"] = self.direction
        if self.floor:
            out["floor"] = self.floor
        return out


def default_record(name: str, value: float) -> MetricRecord:
    """A :class:`MetricRecord` with unit-policy defaults applied."""
    unit = infer_unit(name)
    tolerance, direction, floor = _UNIT_POLICY.get(
        unit, (None, "both", 0.0)
    )
    return MetricRecord(
        name=name,
        value=value,
        unit=unit,
        tolerance=tolerance,
        direction=direction,
        floor=floor,
    )


def flatten(payload: Any, prefix: str = "") -> "Dict[str, float]":
    """Numeric leaves of a nested payload as ``dotted.name -> value``.

    Booleans and strings are skipped (not comparable as magnitudes);
    dict keys join with ``.``.
    """
    flat: "Dict[str, float]" = {}
    if isinstance(payload, Mapping):
        for key in payload:
            sub = f"{prefix}.{key}" if prefix else str(key)
            flat.update(flatten(payload[key], sub))
    elif isinstance(payload, bool):
        pass
    elif isinstance(payload, (int, float)):
        if prefix and math.isfinite(float(payload)):
            flat[prefix] = float(payload)
    return flat


# -- canonical documents -----------------------------------------------------


def _canonical(doc: "Dict[str, Any]") -> "Dict[str, Any]":
    """Coerce a loaded bench document into canonical shape.

    Legacy files (no ``schema`` key) become ``suites`` wholesale, with
    ``metrics`` regenerated from a default-spec flatten.
    """
    if doc.get("schema") == BENCH_SCHEMA:
        doc.setdefault("suites", {})
        doc.setdefault("metrics", {})
        return doc
    suites = dict(doc)
    metrics = {
        name: default_record(name, value).to_dict()
        for name, value in flatten(suites).items()
    }
    return {
        "schema": BENCH_SCHEMA,
        "manifest": None,
        "suites": suites,
        "metrics": metrics,
    }


def record_suite(
    path: "str | os.PathLike",
    key: str,
    payload: "Dict[str, Any]",
    manifest: "Optional[Dict[str, Any]]" = None,
    tolerances: "Optional[Dict[str, Optional[float]]]" = None,
) -> "Dict[str, Any]":
    """Merge one suite's payload into a canonical bench file.

    The nested *payload* is stored verbatim under ``suites[key]`` (so
    bench output stays human-readable), its numeric leaves are
    re-flattened into ``metrics`` (replacing stale entries under the
    same ``key.`` prefix), and the document manifest is refreshed.
    *tolerances* overrides the per-unit default threshold for specific
    flattened names (``None`` demotes a metric to informational).
    """
    path = Path(path)
    if path.exists():
        doc = _canonical(json.loads(path.read_text()))
    else:
        doc = {
            "schema": BENCH_SCHEMA,
            "manifest": None,
            "suites": {},
            "metrics": {},
        }
    doc["suites"][key] = payload
    prefix = key + "."
    doc["metrics"] = {
        name: spec
        for name, spec in doc["metrics"].items()
        if not (name == key or name.startswith(prefix))
    }
    overrides = tolerances or {}
    for name, value in flatten(payload, key).items():
        record = default_record(name, value)
        if name in overrides:
            record.tolerance = overrides[name]
        doc["metrics"][name] = record.to_dict()
    if manifest is None:
        # Imported lazily: export pulls in subprocess/platform, which
        # the comparator path never needs.
        from repro.obs.export import run_manifest

        manifest = run_manifest()
    doc["manifest"] = manifest
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return doc


def load_bench(path: "str | os.PathLike") -> "Dict[str, MetricRecord]":
    """Load one bench file (canonical or legacy) as comparable records."""
    with open(path) as fh:
        doc = _canonical(json.load(fh))
    records: "Dict[str, MetricRecord]" = {}
    for name, spec in doc["metrics"].items():
        base = default_record(name, float(spec["value"]))
        base.unit = spec.get("unit", base.unit)
        if "tolerance" in spec:
            base.tolerance = spec["tolerance"]
        base.direction = spec.get("direction", base.direction)
        base.floor = spec.get("floor", base.floor)
        records[name] = base
    return records


def load_bench_dir(
    bench_dir: "str | os.PathLike",
    pattern: str = "BENCH_*.json",
) -> "Dict[str, Dict[str, MetricRecord]]":
    """All bench files in a directory, keyed by file name."""
    out: "Dict[str, Dict[str, MetricRecord]]" = {}
    root = Path(bench_dir)
    if not root.is_dir():
        return out
    for path in sorted(root.glob(pattern)):
        out[path.name] = load_bench(path)
    return out


# -- comparison --------------------------------------------------------------

#: Delta statuses that fail ``repro bench-report --check``.
FAILING_STATUSES = ("regressed",)


@dataclass
class Delta:
    """One metric's baseline-vs-current comparison."""

    name: str
    status: str  # ok | improved | regressed | new | missing | info
    baseline: "Optional[float]" = None
    current: "Optional[float]" = None
    unit: str = "value"
    rel_change: "Optional[float]" = None
    tolerance: "Optional[float]" = None


def compare(
    baseline: "Dict[str, MetricRecord]",
    current: "Dict[str, MetricRecord]",
) -> "List[Delta]":
    """Noise-aware diff of two metric sets (sorted by name).

    Rules, in order: a metric only in *current* is ``new``; only in
    *baseline* is ``missing`` (both informational -- benches get added
    and retired). Untolerated metrics are ``info``. Both values under
    the unit's noise floor are ``ok`` regardless of ratio. A zero
    baseline compares absolutely against the floor. Otherwise the
    relative change in the *bad* direction beyond the tolerance is a
    ``regressed``; beyond it in the good direction, ``improved``.
    """
    deltas: "List[Delta]" = []
    for name in sorted(set(baseline) | set(current)):
        if name not in baseline:
            rec = current[name]
            deltas.append(
                Delta(name, "new", None, rec.value, rec.unit)
            )
            continue
        if name not in current:
            rec = baseline[name]
            deltas.append(
                Delta(name, "missing", rec.value, None, rec.unit)
            )
            continue
        base, cur = baseline[name], current[name]
        tolerance = (
            cur.tolerance if cur.tolerance is not None else base.tolerance
        )
        delta = Delta(
            name,
            "ok",
            base.value,
            cur.value,
            cur.unit,
            tolerance=tolerance,
        )
        if base.value != 0:
            delta.rel_change = (cur.value - base.value) / abs(base.value)
        elif cur.value == 0:
            delta.rel_change = 0.0
        if tolerance is None:
            delta.status = "info"
            deltas.append(delta)
            continue
        floor = max(cur.floor, base.floor)
        if abs(base.value) <= floor and abs(cur.value) <= floor:
            deltas.append(delta)  # both in the noise: ok
            continue
        if base.value == 0:
            # Zero baseline: relative change is undefined; any move
            # past the noise floor counts as a full-size move.
            moved = abs(cur.value) > floor
            signed = math.copysign(1.0, cur.value) if moved else 0.0
        else:
            moved = abs(delta.rel_change) > tolerance
            signed = math.copysign(1.0, delta.rel_change) if moved else 0.0
        if not moved:
            deltas.append(delta)
            continue
        direction = cur.direction or base.direction
        if direction == "both":
            delta.status = "regressed"
        elif direction == "higher":
            delta.status = "regressed" if signed < 0 else "improved"
        else:  # lower is better
            delta.status = "regressed" if signed > 0 else "improved"
        deltas.append(delta)
    return deltas


def _fmt_value(value: "Optional[float]") -> str:
    if value is None:
        return "-"
    if value == 0:
        return "0"
    if abs(value) >= 1e5 or abs(value) < 1e-3:
        return f"{value:.3e}"
    return f"{value:.4g}"


def format_trend(metrics: "Dict[str, MetricRecord]") -> "List[str]":
    """A current-values table (no baseline to diff against)."""
    lines = [f"{'metric':<64} {'value':>12} {'unit':>6}"]
    for name in sorted(metrics):
        rec = metrics[name]
        lines.append(
            f"{name:<64} {_fmt_value(rec.value):>12} {rec.unit:>6}"
        )
    return lines


def format_deltas(deltas: "List[Delta]", verbose: bool = False) -> "List[str]":
    """A comparison table; quiet mode hides unremarkable rows."""
    lines = [
        f"{'metric':<64} {'baseline':>12} {'current':>12} "
        f"{'change':>8} {'status':>9}"
    ]
    shown = 0
    for delta in deltas:
        if not verbose and delta.status in ("ok", "info"):
            continue
        change = (
            f"{delta.rel_change * 100:+.1f}%"
            if delta.rel_change is not None
            else "-"
        )
        lines.append(
            f"{delta.name:<64} {_fmt_value(delta.baseline):>12} "
            f"{_fmt_value(delta.current):>12} {change:>8} "
            f"{delta.status:>9}"
        )
        shown += 1
    if shown == 0:
        lines.append("(no notable changes)")
    return lines


def bench_report(
    bench_dir: "str | os.PathLike",
    baseline_dir: "Optional[str | os.PathLike]" = None,
    only: "Optional[str]" = None,
    verbose: bool = False,
) -> "Tuple[str, List[Delta]]":
    """Build the ``repro bench-report`` text and the raw deltas.

    Without *baseline_dir*, prints trend tables of current values. With
    it, compares each ``BENCH_*.json`` in *bench_dir* against the same
    file name in *baseline_dir*. *only* filters metric names with an
    ``fnmatch`` pattern (substring match if no wildcard present).
    """

    def keep(name: str) -> bool:
        if not only:
            return True
        if any(ch in only for ch in "*?["):
            return fnmatch.fnmatch(name, only)
        return only in name

    current = load_bench_dir(bench_dir)
    lines: "List[str]" = []
    all_deltas: "List[Delta]" = []
    if baseline_dir is None:
        for fname, metrics in current.items():
            metrics = {n: r for n, r in metrics.items() if keep(n)}
            lines.append(f"== {fname} ==")
            lines.extend(format_trend(metrics))
            lines.append("")
        if not current:
            lines.append(f"no BENCH_*.json files under {bench_dir}")
        return "\n".join(lines), all_deltas

    baseline = load_bench_dir(baseline_dir)
    for fname in sorted(set(current) | set(baseline)):
        base = {
            n: r for n, r in baseline.get(fname, {}).items() if keep(n)
        }
        cur = {n: r for n, r in current.get(fname, {}).items() if keep(n)}
        deltas = compare(base, cur)
        all_deltas.extend(deltas)
        lines.append(f"== {fname} ==")
        lines.extend(format_deltas(deltas, verbose=verbose))
        lines.append("")
    regressed = [d for d in all_deltas if d.status in FAILING_STATUSES]
    improved = [d for d in all_deltas if d.status == "improved"]
    lines.append(
        f"{len(all_deltas)} metrics compared: "
        f"{len(regressed)} regressed, {len(improved)} improved"
    )
    return "\n".join(lines), all_deltas


def regressions(deltas: "Iterable[Delta]") -> "List[Delta]":
    """The deltas that fail a ``--check`` run."""
    return [d for d in deltas if d.status in FAILING_STATUSES]
