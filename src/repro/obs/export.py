"""Persisting registries, traces, and run manifests.

Output formats:

- **metrics JSON** -- one object with a ``manifest`` block (what ran:
  git sha, argv, seed, package versions) and a ``metrics`` block (the
  :meth:`MetricsRegistry.to_dict` snapshot, names sorted);
- **trace JSONL** -- one span object per line (see
  :mod:`repro.obs.trace`), preceded by a single ``{"type": "manifest"}``
  line so a trace file is self-describing on its own.

Everything is plain stdlib JSON -- no dependencies, diff-friendly, and
loadable by any downstream tooling.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
from typing import Any, Dict, Optional, Sequence

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer


def _git_sha() -> "Optional[str]":
    """The repo HEAD sha, or ``None`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def _package_versions() -> "Dict[str, str]":
    versions = {"python": platform.python_version()}
    for name in ("numpy", "scipy"):
        module = sys.modules.get(name)
        if module is None:
            try:
                module = __import__(name)
            except ImportError:  # pragma: no cover - both ship with the repo
                continue
        versions[name] = getattr(module, "__version__", "unknown")
    return versions


def run_manifest(
    argv: "Optional[Sequence[str]]" = None,
    seed: "Optional[int]" = None,
    **extra: Any,
) -> "Dict[str, Any]":
    """Provenance for one run: git sha, args, seed, versions, platform."""
    manifest: Dict[str, Any] = {
        "git_sha": _git_sha(),
        "argv": list(argv) if argv is not None else list(sys.argv),
        "seed": seed,
        "versions": _package_versions(),
        "platform": platform.platform(),
    }
    manifest.update(extra)
    return manifest


def write_metrics(
    registry: MetricsRegistry,
    path: "str | os.PathLike",
    manifest: "Optional[Dict[str, Any]]" = None,
) -> None:
    """Write the registry snapshot (plus manifest) as indented JSON."""
    payload = {
        "manifest": manifest if manifest is not None else run_manifest(),
        "metrics": registry.to_dict(),
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def write_trace(
    tracer: Tracer,
    path: "str | os.PathLike",
    manifest: "Optional[Dict[str, Any]]" = None,
) -> None:
    """Write the trace as JSONL: a manifest line, then one span per line."""
    head = dict(manifest if manifest is not None else run_manifest())
    head["type"] = "manifest"
    with open(path, "w") as fh:
        fh.write(json.dumps(head, sort_keys=True) + "\n")
        fh.write(tracer.to_jsonl())


def write_profile(
    profiler,
    path: "str | os.PathLike",
    manifest: "Optional[Dict[str, Any]]" = None,
) -> None:
    """Write a :class:`~repro.obs.profile.PhaseProfiler` tree as JSON.

    Same envelope as :func:`write_metrics`: a ``manifest`` block plus
    the ``profile`` document from :meth:`PhaseProfiler.to_profile` (or
    any pre-built profile dict -- both are accepted so tests can write
    synthetic trees).
    """
    profile = (
        profiler.to_profile() if hasattr(profiler, "to_profile") else profiler
    )
    payload = {
        "manifest": manifest if manifest is not None else run_manifest(),
        "profile": profile,
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def write_admission_report(
    report,
    path: "str | os.PathLike",
    manifest: "Optional[Dict[str, Any]]" = None,
) -> None:
    """Write an :class:`~repro.robust.admission.AdmissionReport` as JSON.

    Same envelope as :func:`write_metrics`: a ``manifest`` block for
    provenance plus the report's :meth:`to_dict` payload, so failing
    models uploaded from CI identify the commit that produced them.
    """
    payload = {
        "manifest": manifest if manifest is not None else run_manifest(),
        "admission": report.to_dict(),
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def read_metrics(path: "str | os.PathLike") -> "Dict[str, Any]":
    """Load a metrics JSON file back into a plain dict."""
    with open(path) as fh:
        return json.load(fh)


def read_trace(path: "str | os.PathLike") -> "tuple[Dict[str, Any], list]":
    """Load a trace JSONL file: ``(manifest, spans)``."""
    manifest: Dict[str, Any] = {}
    spans = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            if obj.get("type") == "manifest":
                manifest = obj
            else:
                spans.append(obj)
    return manifest, spans
