"""Stdlib-logging wiring for the :mod:`repro` package.

Every module logs through :func:`get_logger`, which namespaces under
the ``repro`` root logger. The library itself never configures
handlers (library best practice -- a ``NullHandler`` keeps "no handler"
warnings away); the CLI's ``--log-level`` calls
:func:`configure_logging`, which attaches one stderr handler with a
compact timestamped format and sets the level.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

ROOT_LOGGER_NAME = "repro"

logging.getLogger(ROOT_LOGGER_NAME).addHandler(logging.NullHandler())

#: Accepted ``--log-level`` names, lowest to highest severity.
LEVELS = ("debug", "info", "warning", "error", "critical")


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` namespace (``repro.<name>``)."""
    if name.startswith(ROOT_LOGGER_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def configure_logging(
    level: str, stream: "Optional[object]" = None
) -> logging.Logger:
    """Attach a stream handler to the ``repro`` root at *level*.

    Idempotent: re-configuring replaces the previously attached handler
    rather than stacking duplicates.

    Raises
    ------
    ValueError
        If *level* is not one of :data:`LEVELS`.
    """
    level = level.lower()
    if level not in LEVELS:
        raise ValueError(f"unknown log level {level!r}; choose from {LEVELS}")
    root = logging.getLogger(ROOT_LOGGER_NAME)
    for handler in list(root.handlers):
        if getattr(handler, "_repro_cli_handler", False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(
        logging.Formatter("%(asctime)s %(levelname)-7s %(name)s: %(message)s")
    )
    handler._repro_cli_handler = True  # type: ignore[attr-defined]
    root.addHandler(handler)
    root.setLevel(level.upper())
    return root
