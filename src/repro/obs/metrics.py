"""Metric primitives and the mergeable :class:`MetricsRegistry`.

Four instrument kinds, chosen for the stack's needs:

- :class:`Counter` -- monotonically accumulating totals (events seen,
  PM commands issued, solver rounds);
- :class:`Gauge` -- last-written scalar (events/second of a run);
- :class:`Histogram` -- fixed-bucket distribution sketch with
  log-spaced bounds by default (queue occupancy, waiting times,
  decision latencies);
- :class:`Series` -- an append-only list of structured records (the
  per-iteration solver convergence trace).

**Deterministic merging** is the design center: the parallel engine
gives every worker its own registry and merges them back in input
order, and the merged result must be *bit-for-bit identical* to the
registry a serial run would have produced -- for any chunking. Integer
accumulation is associative already; floating-point accumulation is
not, so counters and histogram sums accumulate into exact Shewchuk
partial-sum arrays (the ``math.fsum`` representation). Exact sums are
associative and commutative, which makes ``merge`` order-insensitive
at the value level and chunking-insensitive bit-for-bit.

Wall-clock measurements can never merge deterministically; instruments
carrying them are created with ``profiling=True`` (or declare
``profiling_fields`` on a series) and are excluded by
``to_dict(deterministic_only=True)``, which is what identity tests and
the parallel-equals-serial contract compare.
"""

from __future__ import annotations

import bisect
import math
from typing import Any, Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.errors import ReproError


class ObservabilityError(ReproError):
    """Misuse of the metrics/trace layer (type clash, bucket mismatch)."""


def _grow_partials(partials: "List[float]", x: float) -> None:
    """Add *x* into a Shewchuk exact partial-sum array, in place.

    The array represents the exact real sum of everything added so far;
    adding is therefore associative and commutative, which is what makes
    registry merges independent of worker chunking.
    """
    i = 0
    for y in partials:
        if abs(x) < abs(y):
            x, y = y, x
        hi = x + y
        lo = y - (hi - x)
        if lo:
            partials[i] = lo
            i += 1
        x = hi
    partials[i:] = [x]


class _ExactSum:
    """Exactly accumulated float sum (associative, mergeable)."""

    __slots__ = ("partials",)

    def __init__(self) -> None:
        self.partials: List[float] = []

    def add(self, x: float) -> None:
        _grow_partials(self.partials, float(x))

    def merge(self, other: "_ExactSum") -> None:
        for x in other.partials:
            _grow_partials(self.partials, x)

    @property
    def value(self) -> float:
        return math.fsum(self.partials)

    def canonical(self) -> "List[float]":
        """The exact sum as a canonical list of float terms.

        Greedy correctly-rounded expansion: the first term is the
        rounded total, the next the rounded remainder, and so on until
        the remainder is zero. Unlike the internal ``partials`` array
        (whose layout depends on insertion order), this depends only on
        the exact value -- so serialized snapshots compare equal
        whenever the exact sums are equal.
        """
        terms: List[float] = []
        parts = list(self.partials)
        while parts:
            total = math.fsum(parts)
            if total == 0.0:
                break
            terms.append(total)
            _grow_partials(parts, -total)
            parts = [p for p in parts if p != 0.0]
        return terms


def log_buckets(
    low: float = 1e-6, high: float = 1e4, per_decade: int = 2
) -> "Tuple[float, ...]":
    """Log-spaced histogram bucket bounds covering ``[low, high]``.

    Returns the finite upper bounds; observations above the last bound
    land in the overflow bucket, observations at or below ``low``'s
    first bound in the first bucket.
    """
    if not (low > 0 and high > low and per_decade >= 1):
        raise ObservabilityError(
            f"invalid bucket spec: low={low}, high={high}, per_decade={per_decade}"
        )
    n_decades = math.log10(high / low)
    n = int(round(n_decades * per_decade))
    return tuple(low * 10 ** (k / per_decade) for k in range(n + 1))


#: Default bounds: 1e-6 .. 1e4 at two buckets per decade -- wide enough
#: for seconds-scale latencies, queue occupancies, and waiting times.
DEFAULT_BUCKETS = log_buckets()


class Counter:
    """A monotone total. Float increments accumulate exactly."""

    kind = "counter"

    __slots__ = ("name", "profiling", "_int", "_float")

    def __init__(self, name: str, profiling: bool = False) -> None:
        self.name = name
        self.profiling = profiling
        self._int = 0
        self._float = _ExactSum()

    def inc(self, amount: "int | float" = 1) -> None:
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (inc({amount}))"
            )
        if isinstance(amount, int):
            self._int += amount
        else:
            self._float.add(amount)

    @property
    def value(self) -> "int | float":
        if self._float.partials:
            return self._int + self._float.value
        return self._int

    def merge(self, other: "Counter") -> None:
        self._int += other._int
        self._float.merge(other._float)

    def to_dict(self) -> "Dict[str, Any]":
        payload: Dict[str, Any] = {"type": self.kind, "value": self.value}
        canon = self._float.canonical()
        if canon:
            # Ship the exact-sum expansion so a cross-process merge
            # stays bit-for-bit identical to the serial accumulation
            # (the rounded "value" alone would re-round per chunk).
            payload["int"] = self._int
            payload["partials"] = canon
        return payload

    def merge_dict(self, payload: "Mapping[str, Any]") -> None:
        if "partials" in payload:
            self._int += payload["int"]
            for x in payload["partials"]:
                self._float.add(x)
        else:
            self.inc(payload["value"])


class Gauge:
    """A last-write-wins scalar. Merge takes the other's value if set."""

    kind = "gauge"

    __slots__ = ("name", "profiling", "_value", "_set")

    def __init__(self, name: str, profiling: bool = False) -> None:
        self.name = name
        self.profiling = profiling
        self._value = 0.0
        self._set = False

    def set(self, value: float) -> None:
        self._value = float(value)
        self._set = True

    @property
    def value(self) -> float:
        return self._value

    def merge(self, other: "Gauge") -> None:
        if other._set:
            self._value = other._value
            self._set = True

    def to_dict(self) -> "Dict[str, Any]":
        return {"type": self.kind, "value": self._value, "set": self._set}

    def merge_dict(self, payload: "Mapping[str, Any]") -> None:
        if payload.get("set", True):
            self.set(payload["value"])


class Histogram:
    """Fixed-bound bucket histogram with exact sum accumulation.

    ``bounds`` are the finite upper bounds (inclusive) of the first
    ``len(bounds)`` buckets; one overflow bucket catches everything
    larger. Log-spaced :data:`DEFAULT_BUCKETS` by default. Two
    histograms merge bucket-wise, which requires identical bounds.
    """

    kind = "histogram"

    __slots__ = ("name", "profiling", "bounds", "counts", "_sum", "count",
                 "min", "max")

    def __init__(
        self,
        name: str,
        bounds: "Sequence[float] | None" = None,
        profiling: bool = False,
    ) -> None:
        self.name = name
        self.profiling = profiling
        self.bounds: Tuple[float, ...] = (
            DEFAULT_BUCKETS if bounds is None else tuple(float(b) for b in bounds)
        )
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ObservabilityError(
                f"histogram {name!r} bounds must be strictly increasing"
            )
        self.counts = [0] * (len(self.bounds) + 1)
        self._sum = _ExactSum()
        self.count = 0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[self._bucket(value)] += 1
        self._sum.add(value)
        self.count += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def _bucket(self, value: float) -> int:
        # bisect over a ~20-entry tuple; fine for per-event rates.
        return bisect.bisect_left(self.bounds, value)

    @property
    def sum(self) -> float:
        return self._sum.value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise ObservabilityError(
                f"cannot merge histogram {self.name!r}: bucket bounds differ"
            )
        self.counts = [a + b for a, b in zip(self.counts, other.counts)]
        self._sum.merge(other._sum)
        self.count += other.count
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def to_dict(self) -> "Dict[str, Any]":
        payload: Dict[str, Any] = {
            "type": self.kind,
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": None if self.count == 0 else self.min,
            "max": None if self.count == 0 else self.max,
        }
        canon = self._sum.canonical()
        if canon:
            # Exact-sum expansion for bit-for-bit cross-process merging;
            # see Counter.to_dict.
            payload["sum_partials"] = canon
        return payload

    def merge_dict(self, payload: "Mapping[str, Any]") -> None:
        if tuple(payload["bounds"]) != self.bounds:
            raise ObservabilityError(
                f"cannot merge histogram {self.name!r}: bucket bounds differ"
            )
        self.counts = [a + b for a, b in zip(self.counts, payload["counts"])]
        if "sum_partials" in payload:
            for x in payload["sum_partials"]:
                self._sum.add(x)
        elif payload["count"]:
            self._sum.add(payload["sum"])
        self.count += payload["count"]
        if payload["count"]:
            self.min = min(self.min, payload["min"])
            self.max = max(self.max, payload["max"])


class Series:
    """Append-only structured records (e.g. per-iteration solver rows).

    ``profiling_fields`` names record keys that carry wall-clock values;
    they are stripped by the deterministic view so convergence traces
    can carry sweep timings without breaking the parallel-equals-serial
    identity.
    """

    kind = "series"

    __slots__ = ("name", "profiling", "profiling_fields", "records")

    def __init__(
        self,
        name: str,
        profiling: bool = False,
        profiling_fields: "Iterable[str]" = (),
    ) -> None:
        self.name = name
        self.profiling = profiling
        self.profiling_fields = tuple(profiling_fields)
        self.records: List[Dict[str, Any]] = []

    def append(self, **fields: Any) -> None:
        self.records.append(fields)

    def __len__(self) -> int:
        return len(self.records)

    def merge(self, other: "Series") -> None:
        self.records.extend(dict(r) for r in other.records)

    def to_dict(self, deterministic_only: bool = False) -> "Dict[str, Any]":
        if deterministic_only and self.profiling_fields:
            drop = set(self.profiling_fields)
            records = [
                {k: v for k, v in r.items() if k not in drop}
                for r in self.records
            ]
        else:
            records = [dict(r) for r in self.records]
        return {
            "type": self.kind,
            "profiling_fields": list(self.profiling_fields),
            "records": records,
        }

    def merge_dict(self, payload: "Mapping[str, Any]") -> None:
        self.records.extend(dict(r) for r in payload["records"])


_KINDS = {c.kind: c for c in (Counter, Gauge, Histogram, Series)}


class MetricsRegistry:
    """Name-indexed instruments with get-or-create access and merging.

    Not thread-safe by design: each worker owns one registry and the
    parent merges serially. Instruments are identified by name alone;
    re-requesting a name returns the existing instrument, and asking for
    a different kind under the same name is an error.
    """

    def __init__(self) -> None:
        self._instruments: "Dict[str, Any]" = {}

    def _get(self, cls, name: str, **kwargs):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = cls(name, **kwargs)
            self._instruments[name] = instrument
        elif not isinstance(instrument, cls):
            raise ObservabilityError(
                f"metric {name!r} already registered as {instrument.kind}, "
                f"requested {cls.kind}"
            )
        return instrument

    def counter(self, name: str, profiling: bool = False) -> Counter:
        return self._get(Counter, name, profiling=profiling)

    def gauge(self, name: str, profiling: bool = False) -> Gauge:
        return self._get(Gauge, name, profiling=profiling)

    def histogram(
        self,
        name: str,
        bounds: "Sequence[float] | None" = None,
        profiling: bool = False,
    ) -> Histogram:
        return self._get(Histogram, name, bounds=bounds, profiling=profiling)

    def series(
        self,
        name: str,
        profiling: bool = False,
        profiling_fields: "Iterable[str]" = (),
    ) -> Series:
        return self._get(
            Series, name, profiling=profiling, profiling_fields=profiling_fields
        )

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def get(self, name: str):
        """The instrument registered under *name*, or ``None``."""
        return self._instruments.get(name)

    def names(self) -> "List[str]":
        return sorted(self._instruments)

    # -- merging and serialization -------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold *other* into this registry (the parallel-join primitive)."""
        for name, instrument in other._instruments.items():
            mine = self._get(
                type(instrument),
                name,
                **_creation_kwargs(instrument),
            )
            mine.merge(instrument)

    def merge_dict(self, data: "Mapping[str, Mapping[str, Any]]") -> None:
        """Fold a serialized registry (``to_dict`` output) into this one.

        This is how worker registries cross the process boundary: the
        worker serializes, the parent merges in input order.
        """
        for name, payload in data.items():
            cls = _KINDS.get(payload.get("type"))
            if cls is None:
                raise ObservabilityError(
                    f"unknown metric type {payload.get('type')!r} for {name!r}"
                )
            kwargs: Dict[str, Any] = {"profiling": payload.get("profiling", False)}
            if cls is Histogram:
                kwargs["bounds"] = payload["bounds"]
            if cls is Series:
                kwargs["profiling_fields"] = payload.get("profiling_fields", ())
            self._get(cls, name, **kwargs).merge_dict(payload)

    def to_dict(self, deterministic_only: bool = False) -> "Dict[str, Any]":
        """Serializable snapshot, names sorted for stable output.

        ``deterministic_only`` drops instruments created with
        ``profiling=True`` and strips series ``profiling_fields`` --
        the view under which parallel and serial runs are identical.
        """
        out: Dict[str, Any] = {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if deterministic_only and instrument.profiling:
                continue
            if isinstance(instrument, Series):
                payload = instrument.to_dict(deterministic_only=deterministic_only)
            else:
                payload = instrument.to_dict()
            if instrument.profiling:
                payload["profiling"] = True
            out[name] = payload
        return out


def _creation_kwargs(instrument) -> "Dict[str, Any]":
    kwargs: Dict[str, Any] = {"profiling": instrument.profiling}
    if isinstance(instrument, Histogram):
        kwargs["bounds"] = instrument.bounds
    if isinstance(instrument, Series):
        kwargs["profiling_fields"] = instrument.profiling_fields
    return kwargs
