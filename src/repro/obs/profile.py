"""Deterministic phase profiler: wall + CPU + peak allocation per span.

:class:`PhaseProfiler` is a drop-in :class:`~repro.obs.trace.Tracer`
(activated with ``instrument(tracer=profiler)``) that augments every
span the instrumented code already opens with two profiling channels:

- **CPU seconds** (``time.process_time``), so a phase that burns cores
  in BLAS is distinguishable from one that waits on I/O;
- **peak allocation bytes** (``tracemalloc``), the high-water mark of
  traced memory *attributable to that span*, with nested spans folded
  back into their parents so a parent's peak is never smaller than the
  largest peak observed inside it.

The span records are then aggregated **by call path** (the chain of
span names from the root) into a self/cumulative profile tree --
``self_s`` is a node's cumulative wall time minus its direct children's,
the same decomposition ``cProfile`` users expect. The tree structure is
deterministic for a deterministic run (it mirrors the span structure);
only the measured durations vary.

No instrumented module needs changing to gain profiling: the profiler
reuses the exact span sites the tracer already covers, which also
guarantees the profile tree and the span trace agree on phase names.

``tracemalloc`` makes allocation ~2x slower while tracing, so the
profiler only starts it when asked (``trace_malloc=True``, the default
when constructed explicitly) and stops it again in :meth:`close` if it
was the one to start it. The disabled-path cost is unchanged: when no
profiler is installed, ``active()`` still returns the shared no-op.
"""

from __future__ import annotations

import json
import time
import tracemalloc
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.obs.trace import SpanRecord, Tracer

#: Schema tag stamped on exported profile documents.
PROFILE_SCHEMA = "repro-profile/v1"


class _Frame:
    """Per-open-span tracemalloc bookkeeping (absolute byte counts)."""

    __slots__ = ("floor", "watermark")

    def __init__(self, floor: int) -> None:
        self.floor = floor
        #: Highest absolute traced size seen while this span was open,
        #: including peaks reached inside (already closed) child spans.
        self.watermark = floor


class PhaseProfiler(Tracer):
    """A tracer that also records CPU time and allocation peaks.

    Per-span profiling data lives in :attr:`profiles` keyed by span id
    (kept out of ``SpanRecord.attrs`` so trace output is unchanged);
    :meth:`to_profile` folds everything into the exportable tree.
    """

    def __init__(
        self,
        epoch: "Optional[float]" = None,
        trace_malloc: bool = True,
    ) -> None:
        super().__init__(epoch=epoch)
        self.profiles: "Dict[int, Dict[str, Any]]" = {}
        self._frames: "List[_Frame]" = []
        self._owns_tracemalloc = False
        self._trace_malloc = trace_malloc
        if trace_malloc and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._owns_tracemalloc = True

    def close(self) -> None:
        """Stop tracemalloc if this profiler started it (idempotent)."""
        if self._owns_tracemalloc and tracemalloc.is_tracing():
            tracemalloc.stop()
        self._owns_tracemalloc = False

    def _malloc_on(self) -> bool:
        return self._trace_malloc and tracemalloc.is_tracing()

    @contextmanager
    def span(self, name: str, **attrs: Any) -> "Iterator[SpanRecord]":
        cpu0 = time.process_time()
        frame: "Optional[_Frame]" = None
        if self._malloc_on():
            frame = _Frame(tracemalloc.get_traced_memory()[0])
            self._frames.append(frame)
            # Peak := current, so the peak read at exit is the high-water
            # mark reached *during* this span, not before it.
            tracemalloc.reset_peak()
        with super().span(name, **attrs) as record:
            try:
                yield record
            finally:
                profile: "Dict[str, Any]" = {
                    "cpu_s": time.process_time() - cpu0
                }
                if frame is not None:
                    self._frames.pop()
                    abs_peak = max(
                        tracemalloc.get_traced_memory()[1], frame.watermark
                    )
                    if self._frames:
                        # Fold this span's peak into the enclosing span,
                        # then reset so the parent's remaining lifetime
                        # is measured from the current size again.
                        outer = self._frames[-1]
                        outer.watermark = max(outer.watermark, abs_peak)
                        tracemalloc.reset_peak()
                    profile["alloc_peak_bytes"] = max(
                        int(abs_peak - frame.floor), 0
                    )
                self.profiles[record.span_id] = profile

    # -- aggregation ---------------------------------------------------------

    def to_profile(self) -> "Dict[str, Any]":
        """Aggregate spans into the exportable self/cumulative tree."""
        return build_profile(self.to_dicts(), self.profiles)


def build_profile(
    spans: "List[Dict[str, Any]]",
    profiles: "Optional[Dict[int, Dict[str, Any]]]" = None,
) -> "Dict[str, Any]":
    """Fold serialized spans (+ per-span profiling data) into a tree.

    Spans are grouped by *call path* -- the tuple of span names from the
    root down -- so two ``policy_evaluation`` spans under the same
    ``policy_iteration`` parent aggregate into one node with
    ``calls == 2``. Open spans (``duration is None``) are skipped.
    Adopted worker spans without profiling data contribute wall time
    only.
    """
    profiles = profiles or {}
    by_id = {s["span_id"]: s for s in spans}

    def path_of(span: "Dict[str, Any]") -> "Tuple[str, ...]":
        names: "List[str]" = []
        seen = set()
        cur: "Optional[Dict[str, Any]]" = span
        while cur is not None and cur["span_id"] not in seen:
            seen.add(cur["span_id"])
            names.append(cur["name"])
            parent = cur.get("parent_id")
            cur = by_id.get(parent) if parent is not None else None
        return tuple(reversed(names))

    nodes: "Dict[Tuple[str, ...], Dict[str, Any]]" = {}
    for span in spans:
        if span.get("duration") is None:
            continue
        path = path_of(span)
        node = nodes.setdefault(
            path,
            {
                "calls": 0,
                "cum_s": 0.0,
                "cum_cpu_s": 0.0,
                "alloc_peak_bytes": 0,
            },
        )
        prof = profiles.get(span["span_id"], {})
        node["calls"] += 1
        node["cum_s"] += span["duration"]
        node["cum_cpu_s"] += float(prof.get("cpu_s", 0.0))
        node["alloc_peak_bytes"] = max(
            node["alloc_peak_bytes"], int(prof.get("alloc_peak_bytes", 0))
        )

    for path, node in nodes.items():
        child_wall = child_cpu = 0.0
        for other, data in nodes.items():
            if len(other) == len(path) + 1 and other[: len(path)] == path:
                child_wall += data["cum_s"]
                child_cpu += data["cum_cpu_s"]
        node["self_s"] = max(node["cum_s"] - child_wall, 0.0)
        node["self_cpu_s"] = max(node["cum_cpu_s"] - child_cpu, 0.0)

    def subtree(path: "Tuple[str, ...]") -> "Dict[str, Any]":
        node = nodes[path]
        children = sorted(
            (p for p in nodes if len(p) == len(path) + 1 and p[: len(path)] == path),
            key=lambda p: (-nodes[p]["cum_s"], p[-1]),
        )
        return {
            "name": path[-1],
            "path": "/".join(path),
            "calls": node["calls"],
            "cum_s": node["cum_s"],
            "self_s": node["self_s"],
            "cum_cpu_s": node["cum_cpu_s"],
            "self_cpu_s": node["self_cpu_s"],
            "alloc_peak_bytes": node["alloc_peak_bytes"],
            "children": [subtree(p) for p in children],
        }

    roots = sorted(
        (p for p in nodes if len(p) == 1),
        key=lambda p: (-nodes[p]["cum_s"], p[-1]),
    )
    tree = [subtree(p) for p in roots]
    return {
        "schema": PROFILE_SCHEMA,
        "total_s": sum(nodes[p]["cum_s"] for p in roots),
        "total_cpu_s": sum(nodes[p]["cum_cpu_s"] for p in roots),
        "tree": tree,
    }


def flatten_profile(profile: "Dict[str, Any]") -> "List[Dict[str, Any]]":
    """All nodes of a profile tree as a flat list (children stripped)."""
    flat: "List[Dict[str, Any]]" = []

    def walk(node: "Dict[str, Any]") -> None:
        entry = {k: v for k, v in node.items() if k != "children"}
        flat.append(entry)
        for child in node.get("children", ()):
            walk(child)

    for root in profile.get("tree", ()):
        walk(root)
    return flat


def top_self_phase(profile: "Dict[str, Any]") -> "Optional[Dict[str, Any]]":
    """The node with the largest self wall time (ties: first by path)."""
    flat = flatten_profile(profile)
    if not flat:
        return None
    return max(flat, key=lambda n: (n["self_s"], n["path"]))


def format_profile(
    profile: "Dict[str, Any]",
    sort: str = "self",
    limit: int = 30,
) -> str:
    """Render a profile document as a text report.

    Two views: the call tree (indentation = nesting) and a flat table
    sorted by ``self_s`` (``sort="self"``) or ``cum_s`` (``sort="cum"``).
    """
    lines: "List[str]" = []
    header = (
        f"{'calls':>7}  {'cum_s':>9}  {'self_s':>9}  {'cpu_s':>9}  "
        f"{'peak_MB':>8}  phase"
    )

    def fmt(node: "Dict[str, Any]", label: str) -> str:
        return (
            f"{node['calls']:>7}  {node['cum_s']:>9.4f}  "
            f"{node['self_s']:>9.4f}  {node['cum_cpu_s']:>9.4f}  "
            f"{node['alloc_peak_bytes'] / 1e6:>8.2f}  {label}"
        )

    lines.append("phase tree (wall-clock):")
    lines.append(header)

    def walk(node: "Dict[str, Any]", depth: int) -> None:
        lines.append(fmt(node, "  " * depth + node["name"]))
        for child in node.get("children", ()):
            walk(child, depth + 1)

    for root in profile.get("tree", ()):
        walk(root, 0)

    key = "self_s" if sort != "cum" else "cum_s"
    flat = sorted(
        flatten_profile(profile), key=lambda n: (-n[key], n["path"])
    )
    lines.append("")
    lines.append(f"hot phases (by {key}, top {limit}):")
    lines.append(header)
    for node in flat[:limit]:
        lines.append(fmt(node, node["path"]))
    total = profile.get("total_s")
    if total is not None:
        lines.append("")
        lines.append(
            f"total: {total:.4f}s wall, "
            f"{profile.get('total_cpu_s', 0.0):.4f}s cpu"
        )
    return "\n".join(lines) + "\n"


def read_profile(path) -> "Dict[str, Any]":
    """Load a profile JSON document (``{"manifest":..., "profile":...}``).

    Accepts both the export envelope and a bare profile document, so
    hand-saved ``to_profile()`` output renders too.
    """
    with open(path) as fh:
        doc = json.load(fh)
    if "profile" in doc and "tree" not in doc:
        return doc["profile"]
    return doc
