"""Observability layer: metrics, traces, logging, run manifests.

A dependency-free instrumentation stack threaded through the solvers,
the event-driven simulator, the parallel replication engine, and the
experiment drivers:

- :mod:`repro.obs.metrics` -- ``Counter`` / ``Gauge`` / ``Histogram``
  (fixed log-spaced buckets) / ``Series`` instruments in a
  ``MetricsRegistry`` whose merges are deterministic bit-for-bit
  (exact float accumulation), so parallel runs report the same metrics
  as serial ones;
- :mod:`repro.obs.trace` -- ``span()`` wall-clock timers emitting a
  JSONL trace with parent ids;
- :mod:`repro.obs.runtime` -- the ambient ``active()`` /
  ``instrument()`` context; a true no-op by default, so instrumented
  hot paths cost nothing unless observability is switched on;
- :mod:`repro.obs.export` -- metrics-JSON / trace-JSONL writers plus a
  run manifest (git sha, argv, seed, versions);
- :mod:`repro.obs.log` -- stdlib ``logging`` wiring under the
  ``repro`` namespace (the CLI's ``--log-level``);
- :mod:`repro.obs.profile` -- ``PhaseProfiler``, a drop-in tracer that
  adds CPU time and tracemalloc peaks per span and aggregates them into
  a self/cumulative profile tree (the CLI's ``--profile-out``);
- :mod:`repro.obs.benchtrack` -- canonical ``BENCH_*.json`` records
  plus the noise-aware regression comparator behind
  ``repro bench-report``.
"""

from repro.obs.benchtrack import (
    BENCH_SCHEMA,
    MetricRecord,
    bench_report,
    compare,
    load_bench,
    record_suite,
)
from repro.obs.export import (
    read_metrics,
    read_trace,
    run_manifest,
    write_metrics,
    write_profile,
    write_trace,
)
from repro.obs.log import configure_logging, get_logger
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ObservabilityError,
    Series,
    log_buckets,
)
from repro.obs.profile import (
    PhaseProfiler,
    build_profile,
    format_profile,
    read_profile,
    top_self_phase,
)
from repro.obs.runtime import DISABLED, Instrumentation, active, instrument
from repro.obs.trace import SpanRecord, Tracer

__all__ = [
    "BENCH_SCHEMA",
    "DEFAULT_BUCKETS",
    "DISABLED",
    "Counter",
    "Gauge",
    "Histogram",
    "Instrumentation",
    "MetricRecord",
    "MetricsRegistry",
    "ObservabilityError",
    "PhaseProfiler",
    "Series",
    "SpanRecord",
    "Tracer",
    "active",
    "bench_report",
    "build_profile",
    "compare",
    "configure_logging",
    "format_profile",
    "get_logger",
    "instrument",
    "load_bench",
    "log_buckets",
    "read_metrics",
    "read_profile",
    "read_trace",
    "record_suite",
    "run_manifest",
    "top_self_phase",
    "write_metrics",
    "write_profile",
    "write_trace",
]
