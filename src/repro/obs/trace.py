"""Span-based wall-clock tracing with JSONL output.

A :class:`Tracer` records :class:`SpanRecord` entries -- name, start
time, duration, free-form attributes, and the id of the enclosing span
-- via the :meth:`Tracer.span` context manager. The result is a flat
list that serializes to JSONL (one JSON object per line), cheap to
append to and trivially greppable; parent ids reconstruct the call
tree.

Spans measure *wall clock* (``time.perf_counter`` relative to the
tracer's epoch), so traces are inherently non-deterministic; they live
beside, not inside, the deterministic metrics registry. Worker tracers
from the process pool are adopted into the parent with
:meth:`Tracer.adopt`, which renumbers span ids to keep them unique and
re-parents worker roots under the parent's currently open span.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional


@dataclass
class SpanRecord:
    """One completed (or still-open) span."""

    span_id: int
    parent_id: Optional[int]
    name: str
    start: float
    duration: Optional[float]
    attrs: "Dict[str, Any]" = field(default_factory=dict)

    def to_dict(self) -> "Dict[str, Any]":
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "attrs": self.attrs,
        }


class Tracer:
    """Collects spans; one instance per instrumented run (not thread-safe)."""

    def __init__(self, epoch: "Optional[float]" = None) -> None:
        # Forked workers pass the parent tracer's epoch so their span
        # start times land on the parent's timeline (perf_counter is a
        # system-wide monotonic clock on the platforms we fork on).
        self._epoch = time.perf_counter() if epoch is None else epoch
        self._next_id = 1
        self._open: List[SpanRecord] = []
        self.records: List[SpanRecord] = []

    @property
    def epoch(self) -> float:
        return self._epoch

    def _now(self) -> float:
        return time.perf_counter() - self._epoch

    @property
    def current_span_id(self) -> "Optional[int]":
        return self._open[-1].span_id if self._open else None

    @contextmanager
    def span(self, name: str, **attrs: Any) -> "Iterator[SpanRecord]":
        """Time a block; nesting establishes the parent chain.

        The yielded record's ``attrs`` may be updated inside the block
        (e.g. to attach an iteration count discovered mid-span).
        """
        record = SpanRecord(
            span_id=self._next_id,
            parent_id=self.current_span_id,
            name=name,
            start=self._now(),
            duration=None,
            attrs=dict(attrs),
        )
        self._next_id += 1
        self._open.append(record)
        self.records.append(record)
        try:
            yield record
        finally:
            record.duration = self._now() - record.start
            self._open.pop()

    def adopt(self, records: "Iterable[Dict[str, Any]]") -> None:
        """Merge serialized spans from a worker tracer.

        Ids are renumbered into this tracer's sequence (preserving the
        internal parent structure) and parentless worker roots are
        attached to the currently open span, so a fan-out's worker spans
        appear as children of the span that launched the pool.
        """
        id_map: Dict[int, int] = {}
        adopted: List[SpanRecord] = []
        for payload in records:
            new_id = self._next_id
            self._next_id += 1
            id_map[payload["span_id"]] = new_id
            adopted.append(
                SpanRecord(
                    span_id=new_id,
                    parent_id=payload["parent_id"],
                    name=payload["name"],
                    start=payload["start"],
                    duration=payload["duration"],
                    attrs=dict(payload.get("attrs") or {}),
                )
            )
        root_parent = self.current_span_id
        for record in adopted:
            if record.parent_id is None:
                record.parent_id = root_parent
            else:
                record.parent_id = id_map.get(record.parent_id, root_parent)
        self.records.extend(adopted)

    # -- serialization -------------------------------------------------------

    def to_dicts(self) -> "List[Dict[str, Any]]":
        return [record.to_dict() for record in self.records]

    def to_jsonl(self) -> str:
        """The trace as JSONL: one span object per line."""
        return "".join(
            json.dumps(record.to_dict(), sort_keys=True) + "\n"
            for record in self.records
        )
