"""Tensor (Kronecker) algebra used to compose Markov processes.

Definition 4.4 of the paper: for matrices ``A`` (order ``n1``) and ``B``
(order ``n2``),

- the *tensor product* ``A (x) B`` is the Kronecker product, and
- the *tensor sum* ``A (+) B = A (x) I_{n2} + I_{n1} (x) B``.

The tensor sum of two generator matrices is the generator of the two
chains evolving independently in parallel -- exactly how the paper builds
the stable-state block of the joint SP x SQ system generator.
"""

from __future__ import annotations

import numpy as np


def tensor_product(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Kronecker product ``A (x) B`` (Definition 4.4)."""
    return np.kron(np.asarray(a, dtype=float), np.asarray(b, dtype=float))


def tensor_sum(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Tensor sum ``A (+) B = A (x) I + I (x) B`` (Definition 4.4).

    Both inputs must be square. If both are CTMC generators, the result
    is the generator of their independent parallel composition over the
    product state space, ordered with ``A``'s index varying slowest.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError(f"tensor_sum requires square matrices, got {a.shape}")
    if b.ndim != 2 or b.shape[0] != b.shape[1]:
        raise ValueError(f"tensor_sum requires square matrices, got {b.shape}")
    return np.kron(a, np.eye(b.shape[0])) + np.kron(np.eye(a.shape[0]), b)


def product_states(states_a, states_b) -> "list[tuple]":
    """Labels of the product space, ordered to match :func:`tensor_sum`.

    ``A``'s index varies slowest, matching ``np.kron`` block layout.
    """
    return [(sa, sb) for sa in states_a for sb in states_b]
