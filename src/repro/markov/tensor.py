"""Tensor (Kronecker) algebra used to compose Markov processes.

Definition 4.4 of the paper: for matrices ``A`` (order ``n1``) and ``B``
(order ``n2``),

- the *tensor product* ``A (x) B`` is the Kronecker product, and
- the *tensor sum* ``A (+) B = A (x) I_{n2} + I_{n1} (x) B``.

The tensor sum of two generator matrices is the generator of the two
chains evolving independently in parallel -- exactly how the paper builds
the stable-state block of the joint SP x SQ system generator.

Sparse inputs are first-class: passing a scipy sparse matrix to either
operation keeps the result sparse (CSR), so large joint generators stay
O(nnz) instead of O(n^2). :func:`tensor_sum_csr` is the explicit fast
path that always returns CSR regardless of input kind.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp


def _check_square(mat, name: str = "tensor_sum") -> None:
    if mat.ndim != 2 or mat.shape[0] != mat.shape[1]:
        raise ValueError(f"{name} requires square matrices, got {mat.shape}")


def _coerce(mat):
    """Float-typed matrix preserving sparsity kind (CSR for sparse)."""
    if sp.issparse(mat):
        return sp.csr_array(mat, dtype=float)
    return np.asarray(mat, dtype=float)


def tensor_product(a, b):
    """Kronecker product ``A (x) B`` (Definition 4.4).

    Dense inputs produce a dense ndarray (unchanged behaviour); if either
    input is scipy sparse the product is computed sparsely and returned
    as CSR.
    """
    a = _coerce(a)
    b = _coerce(b)
    if sp.issparse(a) or sp.issparse(b):
        return sp.csr_array(sp.kron(a, b, format="csr"))
    return np.kron(a, b)


def tensor_sum(a, b):
    """Tensor sum ``A (+) B = A (x) I + I (x) B`` (Definition 4.4).

    Both inputs must be square. If both are CTMC generators, the result
    is the generator of their independent parallel composition over the
    product state space, ordered with ``A``'s index varying slowest.
    Sparse inputs propagate: if either operand is scipy sparse the sum
    is assembled sparsely and returned as CSR.
    """
    a = _coerce(a)
    b = _coerce(b)
    _check_square(a)
    _check_square(b)
    if sp.issparse(a) or sp.issparse(b):
        return tensor_sum_csr(a, b)
    return np.kron(a, np.eye(b.shape[0])) + np.kron(np.eye(a.shape[0]), b)


def tensor_sum_csr(a, b) -> "sp.csr_array":
    """CSR fast path for the tensor sum: ``kronsum`` without densifying.

    Accepts dense or sparse operands and always returns a CSR array --
    the building block the sparse and matrix-free solver backends use to
    assemble joint generators at O(nnz) memory.
    """
    a = sp.csr_array(a, dtype=float)
    b = sp.csr_array(b, dtype=float)
    _check_square(a, "tensor_sum_csr")
    _check_square(b, "tensor_sum_csr")
    return sp.csr_array(sp.kronsum(b, a, format="csr"))


def product_states(states_a, states_b) -> "list[tuple]":
    """Labels of the product space, ordered to match :func:`tensor_sum`.

    ``A``'s index varies slowest, matching ``np.kron`` block layout.
    """
    return [(sa, sb) for sa in states_a for sb in states_b]
