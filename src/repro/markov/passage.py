"""First-passage (hitting) time analysis for CTMCs.

For a target set ``A`` of states, the mean first-passage time ``m_i``
from state ``i`` satisfies the linear system::

    m_i = 0                                   for i in A
    sum_j G[i, j] m_j = -1                    for i not in A

(standard first-step analysis). Used by the DPM layer to answer
questions like "expected time until the SP is serving again, starting
from (sleeping, q_1) under this policy" -- the latency face of the
power--delay tradeoff -- and to characterize wake-up transients that
the stationary metrics average away.

Also provided: hitting probabilities for competing target sets and the
full mean-first-passage matrix.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import SolverError
from repro.markov.generator import validate_generator


def mean_first_passage_times(
    matrix: np.ndarray, targets: Iterable[int]
) -> np.ndarray:
    """Mean time to first reach any state in *targets*, per start state.

    Parameters
    ----------
    matrix:
        Generator matrix ``G``.
    targets:
        Non-empty collection of absorbing-target state indices.

    Returns
    -------
    Vector ``m`` with ``m[i] = 0`` for targets; ``inf`` where the
    target set is unreachable.

    Raises
    ------
    SolverError
        If *targets* is empty or contains out-of-range indices.
    """
    g = validate_generator(matrix)
    n = g.shape[0]
    target_set = sorted(set(int(t) for t in targets))
    if not target_set:
        raise SolverError("need at least one target state")
    if target_set[0] < 0 or target_set[-1] >= n:
        raise SolverError(f"target indices out of range [0, {n})")
    others = [i for i in range(n) if i not in target_set]
    m = np.zeros(n)
    if not others:
        return m
    sub = g[np.ix_(others, others)]
    rhs = -np.ones(len(others))
    try:
        solution = np.linalg.solve(sub, rhs)
    except np.linalg.LinAlgError:
        # Singular sub-generator: some start states never reach the
        # targets. Solve state by state via least squares and mark
        # non-solutions infinite.
        solution = np.full(len(others), np.inf)
        reachable = _states_reaching(g, target_set, others)
        idx = [k for k, i in enumerate(others) if i in reachable]
        if idx:
            sub_r = sub[np.ix_(idx, idx)]
            try:
                solution_r = np.linalg.solve(sub_r, -np.ones(len(idx)))
            except np.linalg.LinAlgError as exc:  # pragma: no cover
                raise SolverError("degenerate first-passage system") from exc
            for k, value in zip(idx, solution_r):
                solution[k] = value
    if np.any(solution[np.isfinite(solution)] < -1e-9):
        raise SolverError("negative mean passage time: inconsistent generator")
    m[others] = solution
    return m


def _states_reaching(g: np.ndarray, targets: Sequence[int], others) -> set:
    """States from which some target is reachable (graph search)."""
    import networkx as nx

    from repro.markov.classify import transition_graph

    graph = transition_graph(g).reverse()
    reached = set()
    for t in targets:
        reached.add(t)
        reached.update(nx.descendants(graph, t))
    return reached & set(others)


def hitting_probabilities(
    matrix: np.ndarray, goal: Iterable[int], avoid: Iterable[int]
) -> np.ndarray:
    """Probability of reaching *goal* before *avoid*, per start state.

    First-step analysis on the generator with both sets absorbing::

        h_i = 1 for i in goal;  h_i = 0 for i in avoid;
        sum_j G[i, j] h_j = 0 otherwise.
    """
    g = validate_generator(matrix)
    n = g.shape[0]
    goal_set = set(int(i) for i in goal)
    avoid_set = set(int(i) for i in avoid)
    if not goal_set:
        raise SolverError("need at least one goal state")
    if goal_set & avoid_set:
        raise SolverError("goal and avoid sets overlap")
    frozen = goal_set | avoid_set
    others = [i for i in range(n) if i not in frozen]
    h = np.zeros(n)
    for i in goal_set:
        h[i] = 1.0
    if not others:
        return h
    sub = g[np.ix_(others, others)]
    rhs = -g[np.ix_(others, sorted(goal_set))].sum(axis=1)
    try:
        h[others] = np.linalg.solve(sub, rhs)
    except np.linalg.LinAlgError as exc:
        raise SolverError(
            "hitting-probability system is singular: some states reach "
            "neither goal nor avoid"
        ) from exc
    return np.clip(h, 0.0, 1.0)


def mean_first_passage_matrix(matrix: np.ndarray) -> np.ndarray:
    """``M[i, j]`` = mean time to reach ``j`` from ``i`` (diagonal 0)."""
    g = validate_generator(matrix)
    n = g.shape[0]
    result = np.zeros((n, n))
    for j in range(n):
        result[:, j] = mean_first_passage_times(g, [j])
    return result
