"""Markov processes with rewards (Section II of the paper).

A Markov reward process attaches to an ``n``-state CTMC:

- a *rate reward* ``r_ii`` earned per unit time while occupying state
  ``i``, and
- an *impulse (transition) reward* ``r_ij`` earned on each ``i -> j``
  jump (``i != j``).

The *earning rate* of state ``i`` is ``r_i = r_ii + sum_{j != i} s_ij
r_ij``. The expected total reward ``v_i(t)`` from state ``i`` over
horizon ``t`` satisfies the linear ODE system (Eqn. 2.5)::

    dv_i/dt = r_i + sum_j s_ij v_j(t)

whose closed-form solution for a finite horizon is computed here with a
single matrix exponential on an augmented generator. The two infinite-
horizon summaries used for decision making are

- the *limiting average reward* ``g = p . r`` for irreducible chains,
  where ``p`` is the stationary distribution (the paper's
  ``v_avg``), and
- the *discounted reward* ``v = (aI - G)^{-1} r`` with discount factor
  ``a > 0`` (the paper's ``v_dis``); as ``a -> 0``, ``a v -> g``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy.linalg import expm

from repro.errors import InvalidModelError
from repro.markov.generator import GeneratorMatrix, validate_generator


def earning_rates(
    matrix: np.ndarray,
    rate_rewards: np.ndarray,
    impulse_rewards: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Return ``r_i = r_ii + sum_{j != i} s_ij r_ij`` for every state.

    Parameters
    ----------
    matrix:
        Generator matrix ``G``.
    rate_rewards:
        Vector of per-unit-time rewards ``r_ii``.
    impulse_rewards:
        Optional square matrix of transition rewards ``r_ij``; its
        diagonal is ignored. ``None`` means no impulse rewards.
    """
    g = validate_generator(matrix)
    n = g.shape[0]
    r_rate = np.asarray(rate_rewards, dtype=float)
    if r_rate.shape != (n,):
        raise InvalidModelError(
            f"rate_rewards shape {r_rate.shape} does not match {n} states"
        )
    r = r_rate.copy()
    if impulse_rewards is not None:
        r_imp = np.asarray(impulse_rewards, dtype=float)
        if r_imp.shape != (n, n):
            raise InvalidModelError(
                f"impulse_rewards shape {r_imp.shape} does not match ({n}, {n})"
            )
        off_rates = g.copy()
        np.fill_diagonal(off_rates, 0.0)
        imp = r_imp.copy()
        np.fill_diagonal(imp, 0.0)
        r += (off_rates * imp).sum(axis=1)
    return r


class MarkovRewardProcess:
    """A CTMC with rate and impulse rewards.

    Parameters
    ----------
    generator:
        A :class:`~repro.markov.generator.GeneratorMatrix` (or a raw
        square rate matrix, which is wrapped).
    rate_rewards:
        Per-state reward rates ``r_ii``.
    impulse_rewards:
        Optional per-transition rewards ``r_ij``.
    """

    def __init__(
        self,
        generator,
        rate_rewards: np.ndarray,
        impulse_rewards: Optional[np.ndarray] = None,
    ) -> None:
        if not isinstance(generator, GeneratorMatrix):
            generator = GeneratorMatrix(np.asarray(generator, dtype=float))
        self.generator = generator
        self.rate_rewards = np.asarray(rate_rewards, dtype=float)
        self.impulse_rewards = (
            None
            if impulse_rewards is None
            else np.asarray(impulse_rewards, dtype=float)
        )
        # Validates shapes as a side effect.
        self._earning = earning_rates(
            generator.matrix, self.rate_rewards, self.impulse_rewards
        )

    @property
    def earning_rate(self) -> np.ndarray:
        """The vector ``r`` of per-state earning rates."""
        return self._earning

    def expected_total_reward(self, t: float) -> np.ndarray:
        """Solve Eqn. 2.5 for ``v(t)`` with ``v(0) = 0``.

        Uses the augmented-generator trick: with
        ``M = [[G, r], [0, 0]]``, the top-right block of ``expm(M t)``
        applied to the unit tail gives ``v(t)`` exactly. This avoids ODE
        integration error entirely for this linear constant-coefficient
        system.
        """
        if t < 0:
            raise ValueError(f"horizon must be non-negative, got {t}")
        n = self.generator.n_states
        aug = np.zeros((n + 1, n + 1))
        aug[:n, :n] = self.generator.matrix
        aug[:n, n] = self._earning
        return expm(aug * t)[:n, n].copy()

    def limiting_average_reward(self) -> float:
        """The gain ``g = p . r`` (the paper's ``v_avg``); requires
        an irreducible chain for the stationary distribution to exist."""
        p = self.generator.stationary_distribution()
        return float(p @ self._earning)

    def discounted_reward(self, discount: float) -> np.ndarray:
        """Expected total discounted reward ``v = (aI - G)^{-1} r``.

        ``discount`` is the paper's ``a > 0``; larger values weigh the
        near future more heavily. As ``a -> 0``, ``a * v_i -> g`` for
        every state ``i`` of an irreducible chain (Theorem 2.3).
        """
        if discount <= 0:
            raise ValueError(f"discount factor must be positive, got {discount}")
        n = self.generator.n_states
        a = discount * np.eye(n) - self.generator.matrix
        return np.linalg.solve(a, self._earning)

    def bias(self) -> np.ndarray:
        """The bias (relative value) vector ``h`` of the average-reward
        decomposition ``v_i(t) ~ g t + h_i`` for large ``t``.

        Solved from ``G h = g 1 - r`` with the normalization
        ``p . h = 0``; unique for irreducible chains.
        """
        g_mat = self.generator.matrix
        p = self.generator.stationary_distribution()
        gain = float(p @ self._earning)
        n = self.generator.n_states
        a = np.vstack([g_mat, p])
        b = np.concatenate([gain - self._earning, [0.0]])
        h, *_ = np.linalg.lstsq(a, b, rcond=None)
        return h
