"""State classification for continuous-time Markov chains.

Implements the structural notions of Section II of the paper:

- communicating classes (Definition 2.4),
- irreducibility (Definition 2.5),
- connectedness of the transition graph (Definition 2.6), and
- recurrent/transient classification (Definition 2.3) for finite chains,
  where a state is (positive) recurrent iff its communicating class is
  closed -- has no transition leaving it.
"""

from __future__ import annotations

from typing import Dict, List

import networkx as nx
import numpy as np

from repro.markov.generator import DEFAULT_ATOL, validate_generator


def _edge_threshold(g: np.ndarray, atol: float) -> float:
    """Rate below which a transition is structurally absent.

    Relative to the largest rate in the chain: an edge carrying less
    than ``atol`` times the maximal rate is indistinguishable from a
    missing edge at the chain's own magnitude, whatever units the rates
    are expressed in.
    """
    return atol * float(np.max(np.abs(g), initial=0.0))


def transition_graph(matrix: np.ndarray, atol: float = DEFAULT_ATOL) -> nx.DiGraph:
    """Build the directed graph whose edges are positive-rate transitions."""
    g = validate_generator(matrix, atol=atol)
    n = g.shape[0]
    graph = nx.DiGraph()
    graph.add_nodes_from(range(n))
    rows, cols = np.nonzero(g > _edge_threshold(g, atol))
    graph.add_edges_from(
        (int(i), int(j)) for i, j in zip(rows, cols) if i != j
    )
    return graph


def communicating_classes(matrix: np.ndarray) -> "List[frozenset[int]]":
    """Return the communicating classes (Defn. 2.4) as frozensets of indices.

    Classes are the strongly connected components of the transition graph,
    ordered by their smallest member for determinism.
    """
    graph = transition_graph(matrix)
    classes = [frozenset(c) for c in nx.strongly_connected_components(graph)]
    return sorted(classes, key=min)


def is_irreducible(matrix: np.ndarray) -> bool:
    """True iff all states form a single communicating class (Defn. 2.5)."""
    return len(communicating_classes(matrix)) == 1


def is_connected(matrix: np.ndarray) -> bool:
    """True iff the transition graph is (weakly) connected (Defn. 2.6).

    The paper calls a Markov process *connected* when the graph formed by
    its states and transitions is a connected graph; this is the condition
    its action-validity constraints are designed to preserve.
    """
    graph = transition_graph(matrix)
    if graph.number_of_nodes() <= 1:
        return True
    return nx.is_weakly_connected(graph)


def classify_states(matrix: np.ndarray) -> "Dict[int, str]":
    """Classify each state as ``"recurrent"`` or ``"transient"`` (Defn. 2.3).

    For a finite CTMC, a state is recurrent iff its communicating class is
    closed (no transition leaves the class); all recurrent states of a
    finite chain are positive recurrent.
    """
    g = validate_generator(matrix)
    result: Dict[int, str] = {}
    for cls in communicating_classes(g):
        members = sorted(cls)
        outside = [j for j in range(g.shape[0]) if j not in cls]
        closed = True
        if outside:
            threshold = _edge_threshold(g, DEFAULT_ATOL)
            closed = not np.any(g[np.ix_(members, outside)] > threshold)
        label = "recurrent" if closed else "transient"
        for i in members:
            result[i] = label
    return result


def recurrent_states(matrix: np.ndarray) -> "List[int]":
    """Indices of all recurrent states, ascending."""
    return sorted(i for i, c in classify_states(matrix).items() if c == "recurrent")


def transient_states(matrix: np.ndarray) -> "List[int]":
    """Indices of all transient states, ascending."""
    return sorted(i for i, c in classify_states(matrix).items() if c == "transient")
