"""Continuous-time Markov chain (CTMC) substrate.

This subpackage implements the mathematical machinery of Section II of
Qiu & Pedram (DAC 1999):

- :mod:`repro.markov.generator` -- generator (transition-rate) matrices,
  their validation, stationary/limiting distributions (``pG = 0``),
  transient solutions, and uniformization.
- :mod:`repro.markov.classify` -- communicating classes, irreducibility,
  connectedness, and recurrent/transient state classification.
- :mod:`repro.markov.rewards` -- Markov processes with rewards: rate
  rewards, impulse (transition) rewards, earning rates, expected total
  reward over finite horizons (Eqn. 2.5), limiting average reward, and
  discounted reward.
- :mod:`repro.markov.tensor` -- tensor (Kronecker) products and sums
  (Definition 4.4), used to compose the joint SP x SQ generator.
- :mod:`repro.markov.kron` -- the matrix-free Kronecker generator
  operator: tensor-sum/-product structure applied as per-axis matvecs,
  never materializing the joint matrix.
- :mod:`repro.markov.chain` -- a labeled CTMC convenience type.
- :mod:`repro.markov.sampling` -- trajectory sampling.
"""

from repro.markov.chain import ContinuousTimeMarkovChain
from repro.markov.classify import (
    classify_states,
    communicating_classes,
    is_connected,
    is_irreducible,
)
from repro.markov.generator import (
    GeneratorMatrix,
    embedded_jump_chain,
    stationary_distribution,
    transient_distribution,
    uniformize,
    validate_generator,
)
from repro.markov.passage import (
    hitting_probabilities,
    mean_first_passage_matrix,
    mean_first_passage_times,
)
from repro.markov.kron import KroneckerGenerator
from repro.markov.rewards import MarkovRewardProcess
from repro.markov.sampling import TrajectorySampler, sample_path
from repro.markov.tensor import tensor_product, tensor_sum, tensor_sum_csr

__all__ = [
    "ContinuousTimeMarkovChain",
    "GeneratorMatrix",
    "KroneckerGenerator",
    "MarkovRewardProcess",
    "TrajectorySampler",
    "classify_states",
    "communicating_classes",
    "embedded_jump_chain",
    "hitting_probabilities",
    "is_connected",
    "is_irreducible",
    "mean_first_passage_matrix",
    "mean_first_passage_times",
    "sample_path",
    "stationary_distribution",
    "tensor_product",
    "tensor_sum",
    "tensor_sum_csr",
    "transient_distribution",
    "uniformize",
    "validate_generator",
]
