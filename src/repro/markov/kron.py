"""Matrix-free Kronecker-structured generator operators.

The paper composes the joint SYS generator from small per-component
generators with tensor sums and products (Definition 4.4). Forming the
joint matrix throws that structure away and costs O(n^2) memory -- fatal
at the multi-server scales ROADMAP item 1 targets. This module keeps
the factored form: a :class:`KroneckerGenerator` is a sum of Kronecker
terms

``G = sum_t  coeff_t * (A_t1 (x) A_t2 (x) ... (x) A_tK)``

over a fixed axis layout ``dims = (n_1, ..., n_K)``, where each factor
is a small dense or CSR matrix and ``None`` marks an identity factor
(skipped entirely). Its matvec applies the factors axis by axis on the
reshaped operand -- ``O(nnz(A_tk) * n / n_k)`` per factor instead of
``O(n^2)`` -- so the joint generator of a 10^6-state product chain is
applied without ever being materialized.

Tensor-sum structure (``A (+) B = A (x) I + I (x) B``) is the common
case: one single-factor term per axis, built by
:meth:`KroneckerGenerator.tensor_sum`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.errors import InvalidGeneratorError

#: Largest joint order :meth:`KroneckerGenerator.to_dense` materializes
#: by default; beyond it the dense array is almost certainly a bug.
DENSE_LIMIT = 4096


def _as_factor(factor, dim: int):
    """Validate one per-axis factor: square of order *dim*, or ``None``."""
    if factor is None:
        return None
    if sp.issparse(factor):
        mat = sp.csr_array(factor, dtype=float)
    else:
        mat = np.asarray(factor, dtype=float)
    if mat.ndim != 2 or mat.shape != (dim, dim):
        raise InvalidGeneratorError(
            f"Kronecker factor shape {mat.shape} does not match axis order {dim}"
        )
    return mat


def _apply_axis(factor, tensor: np.ndarray, axis: int) -> np.ndarray:
    """Contract *factor* with *tensor* along *axis* (dense or CSR factor).

    Moves the axis to the front, flattens the rest, and runs one
    ``(n_k, n_k) @ (n_k, n/n_k)`` product -- the standard reshape trick
    that makes a Kronecker matvec a sequence of small dense/sparse
    matmuls.
    """
    moved = np.moveaxis(tensor, axis, 0)
    shape = moved.shape
    flat = np.ascontiguousarray(moved).reshape(shape[0], -1)
    out = factor @ flat
    return np.moveaxis(np.asarray(out).reshape(shape), 0, axis)


class KroneckerGenerator:
    """A sum of Kronecker-product terms, applied matrix-free.

    Parameters
    ----------
    dims:
        Per-axis orders ``(n_1, ..., n_K)``; the operator acts on
        vectors of length ``prod(dims)`` laid out with axis 0 varying
        slowest (``np.kron`` order, matching
        :func:`repro.markov.tensor.product_states`).
    terms:
        Sequence of ``(coeff, factors)`` pairs; ``factors`` has one
        entry per axis -- a square matrix of the axis order (dense
        ndarray or scipy sparse) or ``None`` for the identity.
    """

    def __init__(self, dims: Sequence[int], terms) -> None:
        self.dims: Tuple[int, ...] = tuple(int(d) for d in dims)
        if not self.dims or any(d < 1 for d in self.dims):
            raise InvalidGeneratorError(f"invalid axis orders {self.dims!r}")
        self.n = int(np.prod(self.dims))
        checked: List[Tuple[float, tuple]] = []
        for coeff, factors in terms:
            factors = tuple(factors)
            if len(factors) != len(self.dims):
                raise InvalidGeneratorError(
                    f"term has {len(factors)} factors for {len(self.dims)} axes"
                )
            checked.append(
                (float(coeff),
                 tuple(_as_factor(f, d) for f, d in zip(factors, self.dims)))
            )
        self._terms: Tuple[Tuple[float, tuple], ...] = tuple(checked)

    # -- constructors --------------------------------------------------------

    @classmethod
    def tensor_sum(cls, factors) -> "KroneckerGenerator":
        """``A_1 (+) ... (+) A_K``: one single-factor term per axis.

        The K-fold generalization of Definition 4.4's tensor sum -- the
        generator of K chains evolving independently in parallel.
        """
        factors = list(factors)
        dims = [
            (f.shape[0] if sp.issparse(f) else np.asarray(f).shape[0])
            for f in factors
        ]
        terms = []
        for k, factor in enumerate(factors):
            per_axis = [None] * len(factors)
            per_axis[k] = factor
            terms.append((1.0, per_axis))
        return cls(dims, terms)

    @classmethod
    def tensor_product(cls, factors, coeff: float = 1.0) -> "KroneckerGenerator":
        """A single Kronecker-product term ``coeff * A_1 (x) ... (x) A_K``."""
        factors = list(factors)
        dims = [
            (f.shape[0] if sp.issparse(f) else np.asarray(f).shape[0])
            for f in factors
        ]
        return cls(dims, [(coeff, factors)])

    # -- operator interface --------------------------------------------------

    @property
    def shape(self) -> "Tuple[int, int]":
        return (self.n, self.n)

    @property
    def dtype(self):
        return np.dtype(float)

    @property
    def terms(self) -> "Tuple[Tuple[float, tuple], ...]":
        return self._terms

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``G @ x`` without forming ``G``."""
        x = np.asarray(x, dtype=float)
        if x.shape != (self.n,):
            raise InvalidGeneratorError(
                f"operand shape {x.shape} does not match operator order {self.n}"
            )
        y = np.zeros(self.n)
        for coeff, factors in self._terms:
            t = x.reshape(self.dims)
            for axis, factor in enumerate(factors):
                if factor is not None:
                    t = _apply_axis(factor, t, axis)
            y += coeff * t.reshape(self.n)
        return y

    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        """``G.T @ x`` (transposing factor by factor)."""
        x = np.asarray(x, dtype=float)
        if x.shape != (self.n,):
            raise InvalidGeneratorError(
                f"operand shape {x.shape} does not match operator order {self.n}"
            )
        y = np.zeros(self.n)
        for coeff, factors in self._terms:
            t = x.reshape(self.dims)
            for axis, factor in enumerate(factors):
                if factor is not None:
                    t = _apply_axis(factor.T, t, axis)
            y += coeff * t.reshape(self.n)
        return y

    def __matmul__(self, x):
        return self.matvec(x)

    def diagonal(self) -> np.ndarray:
        """``diag(G)`` -- the Kronecker product of per-factor diagonals.

        ``diag(A (x) B) = diag(A) (x) diag(B)``, so the joint diagonal
        (exit rates, for a generator) costs O(K n) and never forms the
        matrix.
        """
        out = np.zeros(self.n)
        for coeff, factors in self._terms:
            d = np.ones(1)
            for dim, factor in zip(self.dims, factors):
                if factor is None:
                    dk = np.ones(dim)
                elif sp.issparse(factor):
                    dk = factor.diagonal()
                else:
                    dk = np.diag(factor)
                d = np.kron(d, dk)
            out += coeff * d
        return out

    def is_finite(self) -> bool:
        """Whether every factor entry is finite."""
        for _, factors in self._terms:
            for factor in factors:
                if factor is None:
                    continue
                data = factor.data if sp.issparse(factor) else factor
                if not np.all(np.isfinite(data)):
                    return False
        return True

    def max_abs_entry(self) -> float:
        """An upper bound on ``max |G_ij|`` from the factored form.

        Exact for tensor sums (single-factor terms); for product terms
        it is the product of per-factor maxima, an upper bound by
        submultiplicativity of the max over the Kronecker pattern.
        """
        total = 0.0
        for coeff, factors in self._terms:
            bound = abs(coeff)
            for factor in factors:
                if factor is None:
                    continue
                data = factor.data if sp.issparse(factor) else factor
                bound *= float(np.max(np.abs(data), initial=0.0))
            total += bound
        return total

    # -- materializations (small sizes / cross-checks) -----------------------

    def to_dense(self, limit: int = DENSE_LIMIT) -> np.ndarray:
        """The dense joint matrix; guarded by *limit* on the order."""
        if self.n > limit:
            raise InvalidGeneratorError(
                f"refusing to densify a {self.n}-state Kronecker operator "
                f"(limit {limit}); raise `limit` explicitly if intended"
            )
        out = np.zeros((self.n, self.n))
        for coeff, factors in self._terms:
            term = np.ones((1, 1))
            for dim, factor in zip(self.dims, factors):
                if factor is None:
                    block = np.eye(dim)
                elif sp.issparse(factor):
                    block = factor.toarray()
                else:
                    block = factor
                term = np.kron(term, block)
            out += coeff * term
        return out

    def to_csr(self) -> "sp.csr_array":
        """The joint matrix in CSR form (still O(nnz), not O(n^2))."""
        out = None
        for coeff, factors in self._terms:
            term = sp.csr_array(np.ones((1, 1)))
            for dim, factor in zip(self.dims, factors):
                if factor is None:
                    block = sp.eye_array(dim, format="csr")
                else:
                    block = sp.csr_array(factor)
                term = sp.kron(term, block, format="csr")
            out = coeff * term if out is None else out + coeff * term
        return sp.csr_array(out)

    def aslinearoperator(self):
        """A :class:`scipy.sparse.linalg.LinearOperator` view."""
        from scipy.sparse.linalg import LinearOperator

        return LinearOperator(
            self.shape, matvec=self.matvec, rmatvec=self.rmatvec,
            dtype=float,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"KroneckerGenerator(dims={self.dims!r}, "
            f"n={self.n}, terms={len(self._terms)})"
        )
