"""Generator (transition-rate) matrices for continuous-time Markov chains.

The generator matrix ``G`` of an ``n``-state CTMC (Eqn. 2.1 of the paper)
has off-diagonal entries ``G[i, j] = s_ij >= 0`` -- the transition rate
from state ``i`` to state ``j`` -- and diagonal entries
``G[i, i] = -sum_{j != i} s_ij`` so that every row sums to zero
(Eqn. 2.4; the paper calls such a matrix a *differential matrix*).

This module provides:

- :func:`validate_generator` -- structural checks.
- :func:`stationary_distribution` -- the limiting distribution, i.e. the
  unique solution of ``pG = 0``, ``sum(p) = 1`` (Theorem 2.1).
- :func:`transient_distribution` -- ``p(t) = p(0) expm(G t)``.
- :func:`uniformize` -- the uniformized DTMC ``P = I + G / Lambda``.
- :func:`embedded_jump_chain` -- the jump-chain transition matrix.
- :class:`GeneratorMatrix` -- a labeled, validated wrapper used by the
  higher-level chain and reward types.
"""

from __future__ import annotations

import math
from typing import Hashable, Optional, Sequence

import numpy as np
from scipy.linalg import expm

from repro.errors import InvalidGeneratorError, NotIrreducibleError

#: Relative tolerance used for generator-property checks. All checks in
#: this module scale with the magnitude of the row they inspect, so a
#: generator with rates ~1e8 and one with rates ~1e-10 are held to the
#: same *relative* conservation standard.
DEFAULT_ATOL = 1e-9


def canonical_shift(max_rate: float) -> int:
    """The binary exponent normalizing *max_rate* into ``[1, 2)``.

    ``ldexp(max_rate, -canonical_shift(max_rate))`` lies in ``[1, 2)``
    for any positive finite rate; zero or non-finite rates map to shift
    0. Because the shift is applied by exponent arithmetic only
    (:func:`numpy.ldexp`), rescaling a matrix by ``2**-shift`` is exact
    on IEEE-754 floats: solvers use it to assemble their linear systems
    in canonical units so that models differing only by a power-of-two
    time rescaling produce bit-identical solutions (after the exact
    back-shift) and extreme-magnitude models neither overflow nor
    underflow inside the factorization.
    """
    if not (np.isfinite(max_rate) and max_rate > 0.0):
        return 0
    return math.frexp(max_rate)[1] - 1


def validate_generator(matrix: np.ndarray, atol: float = DEFAULT_ATOL) -> np.ndarray:
    """Check that *matrix* is a valid CTMC generator and return it as float.

    Parameters
    ----------
    matrix:
        Square array-like. Off-diagonal entries must be non-negative and
        each row must sum to (numerically) zero.
    atol:
        Relative tolerance for the zero-row-sum and non-negativity
        checks; every row is checked against ``atol`` times its own
        magnitude ``sum_j |G[i, j]|``, so the checks are invariant
        under rescaling the whole matrix. An exactly zero row passes
        (its residual is exactly zero).

    Raises
    ------
    InvalidGeneratorError
        If the matrix is not square, has negative off-diagonal entries,
        has positive diagonal entries, or rows that do not sum to zero
        relative to their magnitude.
    """
    g = np.asarray(matrix, dtype=float)
    if g.ndim != 2 or g.shape[0] != g.shape[1]:
        raise InvalidGeneratorError(f"generator must be square, got shape {g.shape}")
    if not np.all(np.isfinite(g)):
        raise InvalidGeneratorError("generator contains non-finite entries")
    row_scale = np.abs(g).sum(axis=1)
    row_tol = atol * row_scale
    off = g.copy()
    np.fill_diagonal(off, 0.0)
    if np.any(off < -row_tol[:, None]):
        i, j = np.unravel_index(np.argmin(off + row_tol[:, None]), off.shape)
        raise InvalidGeneratorError(
            f"negative off-diagonal rate G[{i},{j}] = {g[i, j]:g}"
        )
    if np.any(np.diag(g) > row_tol):
        i = int(np.argmax(np.diag(g) - row_tol))
        raise InvalidGeneratorError(f"positive diagonal entry G[{i},{i}] = {g[i, i]:g}")
    row_sums = g.sum(axis=1)
    if np.any(np.abs(row_sums) > row_tol):
        i = int(np.argmax(np.abs(row_sums) - row_tol))
        raise InvalidGeneratorError(
            f"row {i} sums to {row_sums[i]:g} against magnitude "
            f"{row_scale[i]:g}, expected 0 (Eqn. 2.4)"
        )
    return g


def stationary_distribution(
    matrix: np.ndarray, atol: float = DEFAULT_ATOL, validate: bool = True
) -> np.ndarray:
    """Solve ``pG = 0`` with ``sum(p) = 1`` (Theorem 2.1(2)).

    The linear system is solved by replacing one balance equation with the
    normalization constraint, which is the standard full-rank formulation
    for an irreducible chain.

    Parameters
    ----------
    matrix:
        Generator matrix ``G``.
    atol:
        Tolerance for the structural checks.
    validate:
        Skip :func:`validate_generator` when ``False`` -- for callers
        whose matrix is valid by construction (e.g. rows assembled from a
        compiled CTMDP). The checks never alter the matrix, so the
        returned distribution is identical either way.

    Raises
    ------
    NotIrreducibleError
        If the solution is not unique or contains (numerically)
        negative probabilities, which indicates a reducible chain.
    """
    if validate:
        g = validate_generator(matrix, atol=atol)
    else:
        g = np.asarray(matrix, dtype=float)
    n = g.shape[0]
    if n == 1:
        return np.array([1.0])
    # Transpose: G^T p^T = 0; replace the last equation by sum(p) = 1.
    # Assemble in canonical units (max exit rate scaled into [1, 2) by an
    # exact exponent shift): p is dimensionless, so no back-transform is
    # needed, and generators differing only by a power-of-two rescaling
    # yield bit-identical distributions.
    shift = canonical_shift(float(np.max(np.abs(np.diag(g)), initial=0.0)))
    a = np.ldexp(g.T, -shift)
    a[-1, :] = 1.0
    b = np.zeros(n)
    b[-1] = 1.0
    try:
        p = np.linalg.solve(a, b)
    except np.linalg.LinAlgError as exc:
        raise NotIrreducibleError(
            "stationary distribution is not unique; chain is reducible"
        ) from exc
    if np.any(p < -1e-7):
        raise NotIrreducibleError(
            "stationary solve produced negative probabilities; "
            "chain is likely reducible or ill-conditioned"
        )
    p = np.clip(p, 0.0, None)
    total = p.sum()
    if not np.isfinite(total) or total <= 0.0:
        raise NotIrreducibleError("stationary solve produced a degenerate solution")
    return p / total


def transient_distribution(
    matrix: np.ndarray, initial: np.ndarray, t: float
) -> np.ndarray:
    """Return ``p(t) = p(0) expm(G t)`` for initial row distribution ``p(0)``.

    Parameters
    ----------
    matrix:
        Generator matrix ``G``.
    initial:
        Initial distribution over states (row vector, sums to 1).
    t:
        Elapsed time; must be non-negative.
    """
    g = validate_generator(matrix)
    p0 = np.asarray(initial, dtype=float)
    if p0.shape != (g.shape[0],):
        raise InvalidGeneratorError(
            f"initial distribution shape {p0.shape} does not match {g.shape[0]} states"
        )
    if t < 0:
        raise ValueError(f"time must be non-negative, got {t}")
    if abs(p0.sum() - 1.0) > 1e-6:
        raise InvalidGeneratorError(f"initial distribution sums to {p0.sum():g}, not 1")
    return p0 @ expm(g * t)


def uniformization_rate(matrix: np.ndarray, slack: float = 1.0) -> float:
    """Return a uniformization constant ``Lambda >= max_i |G[i,i]|``.

    ``slack`` multiplies the maximal exit rate; ``slack >= 1`` guarantees
    the uniformized matrix has non-negative diagonal. A small chain of all
    zero rates (a single absorbing state) gets ``Lambda = 1`` so that the
    uniformized matrix is still a valid stochastic matrix.
    """
    if slack < 1.0:
        raise ValueError(f"slack must be >= 1, got {slack}")
    g = np.asarray(matrix, dtype=float)
    max_rate = float(np.max(-np.diag(g), initial=0.0))
    return slack * max_rate if max_rate > 0 else 1.0


def uniformize(
    matrix: np.ndarray, rate: Optional[float] = None
) -> "tuple[np.ndarray, float]":
    """Uniformize generator ``G`` into a DTMC ``P = I + G / Lambda``.

    Uniformization converts continuous-time problems into equivalent
    discrete-time ones: the stationary distribution of ``P`` equals that
    of ``G``, and average-reward MDP algorithms for discrete chains apply
    to the uniformized process with rewards divided by ``Lambda``.

    Returns
    -------
    (P, Lambda):
        The uniformized stochastic matrix and the rate used.
    """
    g = validate_generator(matrix)
    lam = uniformization_rate(g) if rate is None else float(rate)
    if lam < uniformization_rate(g, slack=1.0) - DEFAULT_ATOL:
        raise ValueError(
            f"uniformization rate {lam:g} is below the maximal exit rate "
            f"{uniformization_rate(g):g}"
        )
    p = np.eye(g.shape[0]) + g / lam
    # Clean tiny negative entries produced by floating-point cancellation.
    p = np.clip(p, 0.0, None)
    p /= p.sum(axis=1, keepdims=True)
    return p, lam


def embedded_jump_chain(matrix: np.ndarray) -> np.ndarray:
    """Return the embedded jump-chain transition matrix.

    Row ``i`` is ``s_ij / sum_k s_ik`` for ``j != i``. A state with zero
    exit rate (absorbing) gets a self-loop with probability 1.
    """
    g = validate_generator(matrix)
    n = g.shape[0]
    p = np.zeros_like(g)
    # "Absorbing" is judged relative to the fastest state in the chain:
    # a state whose exit rate is below DEFAULT_ATOL times the maximal
    # exit rate is structurally a sink at this resolution.
    max_exit = float(np.max(-np.diag(g), initial=0.0))
    threshold = DEFAULT_ATOL * max_exit
    for i in range(n):
        exit_rate = -g[i, i]
        if exit_rate <= threshold:
            p[i, i] = 1.0
        else:
            p[i, :] = g[i, :] / exit_rate
            p[i, i] = 0.0
    return p


def holding_rates(matrix: np.ndarray) -> np.ndarray:
    """Return the exit (holding) rate ``-G[i,i]`` of every state."""
    g = validate_generator(matrix)
    return -np.diag(g).copy()


class GeneratorMatrix:
    """A validated, state-labeled CTMC generator matrix.

    This is the central value type of the :mod:`repro.markov` package:
    the raw rates live in :attr:`matrix`, while :attr:`states` carries
    caller-meaningful labels (e.g. ``("active", 2)`` for joint SP/SQ
    states) so that higher layers never juggle bare indices.

    Parameters
    ----------
    matrix:
        Square array of rates satisfying the generator properties.
    states:
        Optional sequence of hashable state labels; defaults to
        ``range(n)``. Labels must be unique.
    """

    def __init__(
        self,
        matrix: np.ndarray,
        states: Optional[Sequence[Hashable]] = None,
    ) -> None:
        self._matrix = validate_generator(matrix)
        n = self._matrix.shape[0]
        if states is None:
            states = tuple(range(n))
        else:
            states = tuple(states)
        if len(states) != n:
            raise InvalidGeneratorError(
                f"{len(states)} state labels for a {n}-state generator"
            )
        if len(set(states)) != len(states):
            raise InvalidGeneratorError("state labels must be unique")
        self._states = states
        self._index = {s: i for i, s in enumerate(states)}

    # -- basic accessors ---------------------------------------------------

    @property
    def matrix(self) -> np.ndarray:
        """The underlying rate matrix (a defensive copy is *not* made)."""
        return self._matrix

    @property
    def states(self) -> "tuple[Hashable, ...]":
        """The ordered tuple of state labels."""
        return self._states

    @property
    def n_states(self) -> int:
        return self._matrix.shape[0]

    def index_of(self, state: Hashable) -> int:
        """Return the row/column index of *state*."""
        try:
            return self._index[state]
        except KeyError:
            raise KeyError(f"unknown state {state!r}") from None

    def rate(self, source: Hashable, dest: Hashable) -> float:
        """Return the transition rate ``s_ij`` from *source* to *dest*."""
        return float(self._matrix[self.index_of(source), self.index_of(dest)])

    def exit_rate(self, state: Hashable) -> float:
        """Return the total exit rate ``-G[i,i]`` of *state*."""
        return float(-self._matrix[self.index_of(state), self.index_of(state)])

    # -- analysis ----------------------------------------------------------

    def stationary_distribution(self) -> np.ndarray:
        """The limiting distribution ``p`` solving ``pG = 0`` (Thm 2.1)."""
        return stationary_distribution(self._matrix)

    def stationary_probability(self, state: Hashable) -> float:
        """Limiting probability of a single labeled state."""
        return float(self.stationary_distribution()[self.index_of(state)])

    def transient_distribution(self, initial: np.ndarray, t: float) -> np.ndarray:
        """``p(t)`` starting from row distribution *initial*."""
        return transient_distribution(self._matrix, initial, t)

    def uniformize(self, rate: Optional[float] = None) -> "tuple[np.ndarray, float]":
        """Uniformized DTMC matrix and rate; see :func:`uniformize`."""
        return uniformize(self._matrix, rate)

    def embedded_jump_chain(self) -> np.ndarray:
        """Jump-chain transition matrix; see :func:`embedded_jump_chain`."""
        return embedded_jump_chain(self._matrix)

    def holding_rates(self) -> np.ndarray:
        """Exit rates of all states, ordered like :attr:`states`."""
        return holding_rates(self._matrix)

    def relabel(self, states: Sequence[Hashable]) -> "GeneratorMatrix":
        """Return a copy of this generator with new state labels."""
        return GeneratorMatrix(self._matrix.copy(), states)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"GeneratorMatrix(n_states={self.n_states})"
