"""Trajectory sampling for continuous-time Markov chains.

Samples paths by the standard jump-chain construction: in state ``i``,
hold for an ``Exp(-G[i,i])`` time, then jump to ``j`` with probability
``s_ij / (-G[i,i])``. Used by tests to cross-validate analytic
stationary distributions and by the simulator's validation suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, List, Optional

import numpy as np

from repro.markov.generator import (
    DEFAULT_ATOL,
    GeneratorMatrix,
    embedded_jump_chain,
    holding_rates,
)


@dataclass
class SampledPath:
    """A piecewise-constant CTMC trajectory.

    ``states[k]`` is occupied during ``[times[k], times[k+1])``; the final
    state is occupied from ``times[-1]`` until the horizon ``t_end``.
    """

    states: List[int]
    times: List[float]
    t_end: float
    labels: "tuple[Hashable, ...]" = field(default_factory=tuple)

    def occupancy(self, n_states: int) -> np.ndarray:
        """Fraction of ``[0, t_end]`` spent in each state index."""
        occ = np.zeros(n_states)
        for k, s in enumerate(self.states):
            t0 = self.times[k]
            t1 = self.times[k + 1] if k + 1 < len(self.times) else self.t_end
            occ[s] += max(0.0, t1 - t0)
        if self.t_end > 0:
            occ /= self.t_end
        return occ

    @property
    def n_jumps(self) -> int:
        return len(self.states) - 1


class TrajectorySampler:
    """Reusable sampler bound to one generator and one RNG."""

    def __init__(self, generator, rng: Optional[np.random.Generator] = None) -> None:
        if not isinstance(generator, GeneratorMatrix):
            generator = GeneratorMatrix(np.asarray(generator, dtype=float))
        self.generator = generator
        self.rng = rng if rng is not None else np.random.default_rng()
        self._jump = embedded_jump_chain(generator.matrix)
        self._rates = holding_rates(generator.matrix)

    def sample(self, initial_state: int, t_end: float) -> SampledPath:
        """Sample one path over ``[0, t_end]`` from *initial_state*."""
        if t_end < 0:
            raise ValueError(f"t_end must be non-negative, got {t_end}")
        n = self.generator.n_states
        if not 0 <= initial_state < n:
            raise ValueError(f"initial_state {initial_state} out of range [0, {n})")
        states = [initial_state]
        times = [0.0]
        t = 0.0
        current = initial_state
        while True:
            rate = self._rates[current]
            if rate <= DEFAULT_ATOL:
                break  # absorbing state
            t += self.rng.exponential(1.0 / rate)
            if t >= t_end:
                break
            current = int(self.rng.choice(n, p=self._jump[current]))
            states.append(current)
            times.append(t)
        return SampledPath(states, times, t_end, labels=self.generator.states)


def sample_path(
    generator,
    initial_state: int,
    t_end: float,
    rng: Optional[np.random.Generator] = None,
) -> SampledPath:
    """One-shot convenience wrapper around :class:`TrajectorySampler`."""
    return TrajectorySampler(generator, rng).sample(initial_state, t_end)
