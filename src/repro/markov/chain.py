"""A labeled continuous-time Markov chain convenience type.

:class:`ContinuousTimeMarkovChain` bundles a validated generator with
state labels and exposes the analysis entry points of the substrate
(stationary/transient distributions, classification, expected rewards)
behind one object. Higher layers (the DPM system model) construct their
joint process as one of these.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Sequence

import numpy as np

from repro.markov import classify
from repro.markov.generator import GeneratorMatrix
from repro.markov.rewards import MarkovRewardProcess


class ContinuousTimeMarkovChain:
    """An immutable, labeled CTMC.

    Parameters
    ----------
    matrix:
        Square generator matrix.
    states:
        Optional unique hashable labels, defaulting to indices.
    """

    def __init__(
        self, matrix: np.ndarray, states: Optional[Sequence[Hashable]] = None
    ) -> None:
        self._gen = GeneratorMatrix(np.asarray(matrix, dtype=float), states)

    @classmethod
    def from_rates(
        cls,
        rates: "Dict[tuple, float]",
        states: Sequence[Hashable],
    ) -> "ContinuousTimeMarkovChain":
        """Build a chain from a sparse ``{(src, dst): rate}`` mapping.

        Diagonal entries are computed automatically from Eqn. 2.4; any
        explicit diagonal entries in *rates* are rejected.
        """
        states = tuple(states)
        index = {s: i for i, s in enumerate(states)}
        n = len(states)
        g = np.zeros((n, n))
        for (src, dst), rate in rates.items():
            if src == dst:
                raise ValueError(
                    f"self-rate for {src!r} must not be given; "
                    "diagonals follow from Eqn. 2.4"
                )
            g[index[src], index[dst]] = float(rate)
        np.fill_diagonal(g, 0.0)
        np.fill_diagonal(g, -g.sum(axis=1))
        return cls(g, states)

    # -- delegation ----------------------------------------------------------

    @property
    def generator(self) -> GeneratorMatrix:
        return self._gen

    @property
    def matrix(self) -> np.ndarray:
        return self._gen.matrix

    @property
    def states(self) -> "tuple[Hashable, ...]":
        return self._gen.states

    @property
    def n_states(self) -> int:
        return self._gen.n_states

    def index_of(self, state: Hashable) -> int:
        return self._gen.index_of(state)

    def rate(self, source: Hashable, dest: Hashable) -> float:
        return self._gen.rate(source, dest)

    def stationary_distribution(self) -> np.ndarray:
        return self._gen.stationary_distribution()

    def stationary_probabilities(self) -> "Dict[Hashable, float]":
        """Stationary distribution keyed by state label."""
        p = self._gen.stationary_distribution()
        return {s: float(p[i]) for i, s in enumerate(self.states)}

    def transient_distribution(self, initial: np.ndarray, t: float) -> np.ndarray:
        return self._gen.transient_distribution(initial, t)

    # -- structure -----------------------------------------------------------

    def is_irreducible(self) -> bool:
        return classify.is_irreducible(self.matrix)

    def is_connected(self) -> bool:
        return classify.is_connected(self.matrix)

    def communicating_classes(self) -> "list[frozenset[Hashable]]":
        """Communicating classes as frozensets of *labels*."""
        return [
            frozenset(self.states[i] for i in cls_)
            for cls_ in classify.communicating_classes(self.matrix)
        ]

    def classify_states(self) -> "Dict[Hashable, str]":
        """Per-label recurrent/transient classification."""
        raw = classify.classify_states(self.matrix)
        return {self.states[i]: kind for i, kind in raw.items()}

    # -- rewards ---------------------------------------------------------------

    def with_rewards(
        self,
        rate_rewards: np.ndarray,
        impulse_rewards: Optional[np.ndarray] = None,
    ) -> MarkovRewardProcess:
        """Attach rewards; see :class:`MarkovRewardProcess`."""
        return MarkovRewardProcess(self._gen, rate_rewards, impulse_rewards)

    def expected_value(self, per_state_values: np.ndarray) -> float:
        """Stationary expectation of a per-state quantity."""
        values = np.asarray(per_state_values, dtype=float)
        if values.shape != (self.n_states,):
            raise ValueError(
                f"values shape {values.shape} does not match {self.n_states} states"
            )
        return float(self.stationary_distribution() @ values)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ContinuousTimeMarkovChain(n_states={self.n_states})"
