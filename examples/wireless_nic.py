"""Adaptive power management of a wireless NIC under bursty traffic.

The paper's SR is a fixed-rate Poisson source, but Section III argues a
PM can track a drifting rate online (within ~5 % after 50 observed
inter-arrivals) and adapt its policy. This example makes that concrete:

- the traffic is a two-phase MMPP (a bursty on/off source) and,
  separately, a piecewise-rate ramp;
- a *static* CTMDP policy solved for the long-run average rate is
  compared against the *adaptive* policy that re-estimates the rate
  from a sliding window and re-solves per rate band.

Run:  python examples/wireless_nic.py
"""

from __future__ import annotations

import numpy as np

from repro.dpm import ServiceRequestor, wireless_nic_provider
from repro.dpm.adaptive import AdaptivePolicySolver
from repro.dpm.optimizer import optimize_weighted
from repro.dpm.system import PowerManagedSystemModel
from repro.experiments.reporting import format_table
from repro.policies import AdaptiveCTMDPPolicy, OptimalCTMDPPolicy
from repro.sim import MMPPProcess, PiecewiseRateProcess, simulate

CAPACITY = 10
WEIGHT = 0.02  # packets are cheap to delay relative to radio power
N_REQUESTS = 30_000
SEED = 23


def bursty_workload() -> MMPPProcess:
    """An on/off source: 50 pkt/s bursts, 2 pkt/s background."""
    return MMPPProcess(
        rates=(50.0, 2.0),
        modulator=np.array([[-0.2, 0.2], [0.05, -0.05]]),  # 5 s bursts, 20 s lulls
    )


def ramp_workload() -> PiecewiseRateProcess:
    """Rate ramps 2 -> 10 -> 40 -> 5 pkt/s over long segments."""
    return PiecewiseRateProcess(
        segments=((600.0, 2.0), (600.0, 10.0), (600.0, 40.0), (600.0, 5.0))
    )


def average_rate_mmpp(process: MMPPProcess) -> float:
    """Long-run average rate of the MMPP (stationary phase mix)."""
    from repro.markov.generator import stationary_distribution

    p = stationary_distribution(process.modulator)
    return float(p @ process.rates)


def main() -> None:
    provider = wireless_nic_provider()
    rows = []
    for label, workload_factory, mean_rate in (
        ("bursty MMPP", bursty_workload, average_rate_mmpp(bursty_workload())),
        ("rate ramp", ramp_workload, 14.25),  # time-average of the segments
    ):
        model = PowerManagedSystemModel(
            provider=provider,
            requestor=ServiceRequestor(mean_rate),
            capacity=CAPACITY,
        )
        static = optimize_weighted(model, WEIGHT)
        static_sim = simulate(
            provider,
            CAPACITY,
            workload_factory(),
            OptimalCTMDPPolicy(static.policy, CAPACITY, label="static"),
            n_requests=N_REQUESTS,
            seed=SEED,
        )
        adaptive_policy = AdaptiveCTMDPPolicy(
            AdaptivePolicySolver(model, weight=WEIGHT, band_width=0.3)
        )
        adaptive_sim = simulate(
            provider,
            CAPACITY,
            workload_factory(),
            adaptive_policy,
            n_requests=N_REQUESTS,
            seed=SEED,
        )
        for name, sim in (("static", static_sim), ("adaptive", adaptive_sim)):
            rows.append(
                (
                    label,
                    name,
                    1000.0 * sim.average_power,
                    1000.0 * sim.average_waiting_time,
                    sim.average_queue_length,
                    sim.loss_probability,
                )
            )
        print(
            f"{label}: adaptive solved {adaptive_policy.n_solves} rate bands "
            f"(final estimate {adaptive_policy.current_rate_estimate():.2f} pkt/s)"
        )

    print()
    print(
        format_table(
            (
                "workload",
                "policy",
                "power [mW]",
                "avg waiting [ms]",
                "avg queue",
                "loss prob",
            ),
            rows,
        )
    )


if __name__ == "__main__":
    main()
