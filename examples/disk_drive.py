"""Power-managing a four-mode hard disk.

A domain example beyond the paper's three-mode server: a disk with
``active / idle / standby / sleep`` modes (spinning, heads parked, spun
down), millisecond services and second-scale spin-ups. Compares, on the
same request stream:

- the CTMDP-optimal policy at several delay bounds,
- a greedy spin-down policy,
- a multi-level timeout governor (the shape real OSes ship), and
- the clairvoyant break-even oracle (an energy lower-bound reference).

Run:  python examples/disk_drive.py
"""

from __future__ import annotations

import numpy as np

from repro.dpm import ServiceRequestor, disk_drive_provider
from repro.dpm.optimizer import optimize_constrained
from repro.dpm.system import PowerManagedSystemModel
from repro.experiments.reporting import format_table
from repro.policies import (
    GreedyPolicy,
    MultiLevelTimeoutPolicy,
    OracleIdlePolicy,
)
from repro.policies.optimal import StochasticCTMDPPolicy
from repro.sim import TraceArrivals, simulate

ARRIVAL_RATE = 0.25  # bursts of file-system traffic, one request per 4 s
CAPACITY = 8
N_REQUESTS = 20_000
SEED = 7


def poisson_trace(rate: float, n: int, seed: int) -> TraceArrivals:
    """A pre-generated Poisson trace (shared by all policies, and
    required by the clairvoyant oracle)."""
    rng = np.random.default_rng(seed)
    times = np.cumsum(rng.exponential(1.0 / rate, size=n))
    return TraceArrivals(times.tolist())


def main() -> None:
    provider = disk_drive_provider()
    model = PowerManagedSystemModel(
        provider=provider,
        requestor=ServiceRequestor(ARRIVAL_RATE),
        capacity=CAPACITY,
    )
    print(f"disk model: {model}")

    trace = poisson_trace(ARRIVAL_RATE, N_REQUESTS, SEED)

    rows = []

    for bound in (0.5, 1.0, 2.0):
        optimal = optimize_constrained(model, max_queue_length=bound)
        sim = simulate(
            provider,
            CAPACITY,
            poisson_trace(ARRIVAL_RATE, N_REQUESTS, SEED),
            StochasticCTMDPPolicy(optimal.policy, CAPACITY, seed=SEED),
            n_requests=N_REQUESTS,
            seed=SEED,
        )
        rows.append(
            (
                f"ctmdp-optimal (L<={bound:g})",
                sim.average_power,
                sim.average_waiting_time,
                sim.average_queue_length,
            )
        )

    heuristics = {
        "greedy": GreedyPolicy(provider),
        "multilevel timeout": MultiLevelTimeoutPolicy(
            stages=(("idle", 0.5), ("standby", 5.0), ("sleep", 30.0)),
            provider=provider,
        ),
        "oracle (clairvoyant)": OracleIdlePolicy(trace, provider),
    }
    for name, policy in heuristics.items():
        sim = simulate(
            provider,
            CAPACITY,
            poisson_trace(ARRIVAL_RATE, N_REQUESTS, SEED)
            if not policy.clairvoyant
            else trace,
            policy,
            n_requests=N_REQUESTS,
            seed=SEED,
        )
        rows.append(
            (
                name,
                sim.average_power,
                sim.average_waiting_time,
                sim.average_queue_length,
            )
        )

    print()
    print(
        format_table(
            ("policy", "power [W]", "avg waiting [s]", "avg queue"), rows
        )
    )


if __name__ == "__main__":
    main()
