"""Quickstart: solve and simulate the paper's power-managed system.

Builds the Section-V system (3-mode server, queue capacity 5, Poisson
requests), finds the optimal power-management policy two ways --
weighted-cost policy iteration and the constrained LP -- prints the
resulting policy tables, and cross-checks the analytic ("functional")
metrics against the event-driven simulator.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.dpm import paper_system
from repro.dpm.optimizer import optimize_constrained, optimize_weighted
from repro.experiments.reporting import format_table
from repro.policies import OptimalCTMDPPolicy
from repro.policies.optimal import StochasticCTMDPPolicy
from repro.sim import PoissonProcess, simulate


def print_policy_table(title: str, assignment) -> None:
    print(f"\n{title}")
    rows = sorted(assignment.items(), key=lambda kv: repr(kv[0]))
    print(format_table(("system state", "command"), [(repr(s), a) for s, a in rows]))


def main() -> None:
    model = paper_system()
    print(f"model: {model}")
    print(f"joint states: {model.n_states}")

    # 1. Weighted optimization (Eqn. 3.1, w = 1).
    weighted = optimize_weighted(model, weight=1.0)
    print_policy_table(
        "optimal policy for Cost = C_pow + 1.0 * C_sq:",
        weighted.policy.as_dict(),
    )
    m = weighted.metrics
    print(
        f"\nanalytic: power={m.average_power:.3f} W, "
        f"queue length={m.average_queue_length:.3f}, "
        f"waiting time={m.average_waiting_time:.3f} s, "
        f"loss rate={m.loss_rate:.5f} /s"
    )

    # 2. Simulate the same policy and compare.
    sim = simulate(
        provider=model.provider,
        capacity=model.capacity,
        workload=PoissonProcess(model.requestor.rate),
        policy=OptimalCTMDPPolicy(weighted.policy, model.capacity),
        n_requests=50_000,
        seed=1,
    )
    print(
        f"simulated: power={sim.average_power:.3f} W, "
        f"queue length={sim.average_queue_length:.3f}, "
        f"waiting time={sim.average_waiting_time:.3f} s "
        f"({sim.n_pm_invocations} asynchronous PM invocations)"
    )

    # 3. Constrained optimization: min power s.t. avg queue length <= 1.
    constrained = optimize_constrained(model, max_queue_length=1.0)
    c = constrained.metrics
    print(
        f"\nconstrained optimum (L <= 1): power={c.average_power:.3f} W "
        f"at queue length {c.average_queue_length:.3f}"
    )
    sim_c = simulate(
        provider=model.provider,
        capacity=model.capacity,
        workload=PoissonProcess(model.requestor.rate),
        policy=StochasticCTMDPPolicy(constrained.policy, model.capacity, seed=2),
        n_requests=50_000,
        seed=1,
    )
    print(
        f"simulated:                    power={sim_c.average_power:.3f} W "
        f"at queue length {sim_c.average_queue_length:.3f}"
    )


if __name__ == "__main__":
    main()
