"""Inspecting a power-management policy with the timeline recorder.

Aggregate metrics say *how much* power a policy draws; the timeline
recorder shows *when and why*. This example runs the CTMDP-optimal
policy with a recorder attached and walks through:

- the mode-residency breakdown and the first few mode segments,
- a sample request's lifecycle (arrival -> service start -> departure),
- the energy spent in the first simulated hour vs a later hour,
- where the PM's decisions cluster (event histogram).

Run:  python examples/timeline_debugging.py
"""

from __future__ import annotations

from collections import Counter

from repro.dpm import paper_system
from repro.dpm.optimizer import optimize_weighted
from repro.experiments.reporting import format_table
from repro.policies import OptimalCTMDPPolicy
from repro.sim import PoissonProcess, simulate
from repro.sim.recorder import TimelineRecorder


def main() -> None:
    model = paper_system()
    solved = optimize_weighted(model, weight=1.0)
    recorder = TimelineRecorder()
    result = simulate(
        provider=model.provider,
        capacity=model.capacity,
        workload=PoissonProcess(model.requestor.rate),
        policy=OptimalCTMDPPolicy(solved.policy, model.capacity),
        n_requests=5_000,
        seed=11,
        recorder=recorder,
    )

    print(f"simulated {result.elapsed:,.0f} s, {result.n_completed} requests served")
    print()
    print("mode residency:")
    rows = [
        (mode, recorder.busy_fraction(mode), result.mode_residency.get(mode, 0.0))
        for mode in model.provider.modes
    ]
    print(format_table(("mode", "fraction", "seconds"), rows))

    print()
    print("first mode segments:")
    rows = [
        (f"{s.start:9.2f}", f"{s.end:9.2f}", s.mode, s.duration)
        for s in recorder.mode_segments[:8]
    ]
    print(format_table(("start [s]", "end [s]", "mode", "duration [s]"), rows))

    served = [r for r in recorder.requests if r.departure_time is not None]
    sample = served[len(served) // 2]
    print()
    print(
        f"request #{sample.request_id}: arrived {sample.arrival_time:.2f} s, "
        f"service started {sample.service_start_time:.2f} s "
        f"(queued {sample.service_start_time - sample.arrival_time:.2f} s), "
        f"departed {sample.departure_time:.2f} s; SP was in mode "
        f"'{recorder.mode_at(sample.arrival_time)}' at arrival"
    )

    hour = 3600.0
    print()
    print(
        f"energy in hour 1: {recorder.energy_between(model.provider, 0, hour):,.0f} J; "
        f"hour 5: {recorder.energy_between(model.provider, 4 * hour, 5 * hour):,.0f} J"
    )

    print()
    counts = Counter(kind for _, kind in recorder.events)
    print("event histogram:", dict(sorted(counts.items())))


if __name__ == "__main__":
    main()
