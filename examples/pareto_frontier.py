"""Exact power--delay frontier of the paper's system.

Enumerates every deterministic Pareto point (no weight grid -- recursive
bisection finds all breakpoints), shows the randomized lower hull at a
few intermediate delays, and reports each frontier policy's wake-up
latency (mean time from the sleeping states until the server is active),
the transient metric stationary averages hide.

Run:  python examples/pareto_frontier.py
"""

from __future__ import annotations

from repro.dpm import paper_system
from repro.dpm.analysis import wakeup_latency
from repro.dpm.pareto import deterministic_frontier, randomized_frontier
from repro.experiments.reporting import format_table


def main() -> None:
    model = paper_system()
    frontier = deterministic_frontier(model, max_weight=200.0)

    rows = []
    for point in frontier:
        latencies = wakeup_latency(model, point.policy)
        worst_wakeup = max(latencies.values())
        rows.append(
            (
                f"{point.weight:.4f}",
                point.power,
                point.delay,
                point.metrics.average_waiting_time,
                worst_wakeup,
            )
        )
    print(f"deterministic frontier: {len(frontier)} Pareto points")
    print(
        format_table(
            (
                "weight",
                "power [W]",
                "avg queue",
                "avg waiting [s]",
                "worst wakeup [s]",
            ),
            rows,
        )
    )

    print()
    print("randomized lower hull between adjacent vertices:")
    mids = [
        0.5 * (a.delay + b.delay) for a, b in zip(frontier, frontier[1:])
    ][:6]
    hull = randomized_frontier(model, mids)
    print(
        format_table(
            ("delay bound", "min power [W]"),
            [(f"{d:.4f}", m.average_power) for d, m in zip(mids, hull)],
        )
    )


if __name__ == "__main__":
    main()
