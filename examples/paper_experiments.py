"""Regenerate every exhibit of the paper's evaluation (Section V).

Prints the data behind Figure 4 (power--delay tradeoff vs N-policies),
Table 1 (Little's-law approximation accuracy), and Figure 5 (comparison
against greedy and timeout heuristics across input rates).

Run:  python examples/paper_experiments.py [n_requests]

With no argument the paper's full 50 000 requests per run are used
(takes a few minutes); pass e.g. 10000 for a quick pass.
"""

from __future__ import annotations

import sys

from repro.experiments.figure4 import format_figure4, run_figure4
from repro.experiments.figure5 import format_figure5, run_figure5
from repro.experiments.setup import DEFAULT_N_REQUESTS
from repro.experiments.table1 import format_table1, run_table1


def main() -> None:
    n_requests = int(sys.argv[1]) if len(sys.argv) > 1 else DEFAULT_N_REQUESTS

    print("=" * 72)
    print("Figure 4: power-delay tradeoff, CTMDP-optimal vs N-policies")
    print("=" * 72)
    print(format_figure4(run_figure4(n_requests=n_requests)))

    print()
    print("=" * 72)
    print("Table 1: accuracy of the Little's-law queue-length approximation")
    print("=" * 72)
    print(format_table1(run_table1(n_requests=n_requests)))

    print()
    print("=" * 72)
    print("Figure 5: CTMDP-optimal vs greedy and timeout heuristics")
    print("=" * 72)
    print(format_figure5(run_figure5(n_requests=n_requests)))


if __name__ == "__main__":
    main()
