"""Setuptools shim.

The build environment is offline and lacks the ``wheel`` package, so the
PEP-660 editable-install path (which needs ``bdist_wheel``) is
unavailable; this file enables the legacy ``pip install -e .
--no-use-pep517`` route. All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
