"""Observability overhead: disabled instrumentation must be free.

The instrumentation layer is threaded through the simulator's event
loop and the solver sweeps, guarded by ``active().enabled`` /
``is not None`` checks. The no-op guarantee -- the whole point of the
ambient-context design -- is that those guards cost well under 2 % of
the uninstrumented event rate. This bench measures

- the guard itself (one ``active()`` read plus an attribute check), at
  the nanosecond scale;
- an end-to-end simulation with instrumentation disabled vs enabled,
  which bounds what a user pays when they *do* ask for metrics;

and records both into ``BENCH_obs_overhead.json``. The <2 % assertion
multiplies the measured per-guard cost by the number of guard sites per
simulated event and compares against the measured per-event budget.
"""

from __future__ import annotations

import time
from pathlib import Path

from benchmarks.conftest import BENCH_N_REQUESTS, BENCH_SEED, once
from repro.obs.benchtrack import record_suite
from repro.dpm.presets import paper_service_provider
from repro.obs.metrics import MetricsRegistry
from repro.obs.runtime import active as obs_active
from repro.obs.runtime import instrument
from repro.policies import GreedyPolicy
from repro.sim import PoissonProcess, simulate

BENCH_JSON = Path(__file__).parent / "BENCH_obs_overhead.json"

#: Guarded touch points per simulated event in the hot loop: the event
#: counter, the occupancy observation, the decision-latency wrap, and
#: the per-event ``is not None`` re-checks around them.
GUARD_SITES_PER_EVENT = 6


def _record(key: str, payload) -> None:
    """Merge one measurement into the canonical bench file (schema,
    manifest, and flattened comparable metrics -- see
    :mod:`repro.obs.benchtrack`)."""
    record_suite(BENCH_JSON, key, payload)


def _best_of(fn, repeats: int = 3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _guard_ns(n: int = 2_000_000) -> float:
    """Best-of cost of one disabled guard check, in nanoseconds."""

    def loop():
        enabled = 0
        for _ in range(n):
            ins = obs_active()
            if ins.enabled:  # pragma: no cover - disabled in this bench
                enabled += 1
        return enabled

    best_s, enabled = _best_of(loop)
    assert enabled == 0

    def empty_loop():
        acc = 0
        for _ in range(n):
            acc += 0
        return acc

    base_s, _ = _best_of(empty_loop)
    return max(0.0, (best_s - base_s) / n * 1e9)


def _simulate_once():
    provider = paper_service_provider()
    return simulate(
        provider=provider,
        capacity=5,
        workload=PoissonProcess(1 / 6),
        policy=GreedyPolicy(provider),
        n_requests=BENCH_N_REQUESTS,
        seed=BENCH_SEED,
    )


def test_bench_obs_overhead(benchmark):
    def measure():
        guard_ns = _guard_ns()
        disabled_s, disabled = _best_of(_simulate_once)
        registry = MetricsRegistry()

        def enabled_run():
            with instrument(metrics=registry):
                return simulate(
                    provider=paper_service_provider(),
                    capacity=5,
                    workload=PoissonProcess(1 / 6),
                    policy=GreedyPolicy(paper_service_provider()),
                    n_requests=BENCH_N_REQUESTS,
                    seed=BENCH_SEED,
                )

        enabled_s, enabled = _best_of(enabled_run)
        n_events = registry.counter("sim.events").value // 3  # 3 best-of runs
        return guard_ns, disabled_s, disabled, enabled_s, enabled, n_events

    guard_ns, disabled_s, disabled, enabled_s, enabled, n_events = once(
        benchmark, measure
    )
    # Enabled metrics must not perturb the simulation itself.
    assert enabled.average_power == disabled.average_power
    assert enabled.n_generated == disabled.n_generated

    per_event_budget_ns = disabled_s / n_events * 1e9
    guard_fraction = GUARD_SITES_PER_EVENT * guard_ns / per_event_budget_ns
    payload = {
        "n_requests": BENCH_N_REQUESTS,
        "n_events": int(n_events),
        "guard_ns": guard_ns,
        "guard_sites_per_event": GUARD_SITES_PER_EVENT,
        "disabled_s": disabled_s,
        "enabled_s": enabled_s,
        "enabled_overhead_fraction": enabled_s / disabled_s - 1.0,
        "disabled_guard_fraction": guard_fraction,
    }
    _record("simulator_event_loop", payload)
    print(
        f"\nguard {guard_ns:.1f} ns, per-event budget "
        f"{per_event_budget_ns:.0f} ns, disabled guard share "
        f"{guard_fraction:.2%}, enabled overhead "
        f"{payload['enabled_overhead_fraction']:.2%}"
    )
    # The no-op guarantee: all disabled guards together cost < 2 % of
    # one simulated event.
    assert guard_fraction < 0.02
    # Even fully enabled metrics stay far from dominating the run.
    assert enabled_s < 2.0 * disabled_s


def test_bench_solver_instrumentation_overhead(benchmark):
    from repro.ctmdp.policy_iteration import policy_iteration
    from repro.dpm.presets import paper_system

    def measure():
        mdp = paper_system(capacity=60).build_ctmdp(weight=1.0)
        from repro.ctmdp.compiled import compile_ctmdp

        compile_ctmdp(mdp)  # warm the lowering cache out of the timing
        disabled_s, disabled = _best_of(lambda: policy_iteration(mdp))

        def enabled_run():
            with instrument(metrics=MetricsRegistry()):
                return policy_iteration(mdp)

        enabled_s, enabled = _best_of(enabled_run)
        return disabled_s, disabled, enabled_s, enabled

    disabled_s, disabled, enabled_s, enabled = once(benchmark, measure)
    assert enabled.gain == disabled.gain
    assert enabled.policy.as_dict() == disabled.policy.as_dict()
    payload = {
        "capacity": 60,
        "disabled_s": disabled_s,
        "enabled_s": enabled_s,
        "enabled_overhead_fraction": enabled_s / disabled_s - 1.0,
    }
    _record("policy_iteration_q60", payload)
    print(
        f"\nPI Q=60: disabled {disabled_s * 1e3:.2f} ms, enabled "
        f"{enabled_s * 1e3:.2f} ms "
        f"({payload['enabled_overhead_fraction']:+.1%})"
    )
    # Per-iteration series rows are cheap next to the linear solves.
    assert enabled_s < 1.5 * disabled_s


def test_bench_sparse_instrumentation_overhead(benchmark):
    """Sparse tier: Krylov series + span capture vs the bare ladder."""
    from repro.ctmdp.policy_iteration import policy_iteration
    from repro.dpm.presets import paper_system

    def measure():
        mdp = paper_system(capacity=500).build_ctmdp(
            weight=1.0, backend="sparse"
        )
        policy_iteration(mdp)  # warm caches out of the timing
        disabled_s, disabled = _best_of(lambda: policy_iteration(mdp))
        registry = MetricsRegistry()

        def enabled_run():
            with instrument(metrics=registry):
                return policy_iteration(mdp)

        enabled_s, enabled = _best_of(enabled_run)
        n_solves = registry.counter("solver.sparse.direct_solves").value
        return disabled_s, disabled, enabled_s, enabled, n_solves

    disabled_s, disabled, enabled_s, enabled, n_solves = once(
        benchmark, measure
    )
    assert enabled.gain == disabled.gain
    assert enabled.policy.as_dict() == disabled.policy.as_dict()
    assert n_solves > 0  # the instrumented runs really hit the ladder
    payload = {
        "capacity": 500,
        "n_direct_solves": int(n_solves),
        "disabled_s": disabled_s,
        "enabled_s": enabled_s,
        "enabled_overhead_fraction": enabled_s / disabled_s - 1.0,
    }
    _record("sparse_policy_iteration_q500", payload)
    print(
        f"\nsparse PI Q=500: disabled {disabled_s * 1e3:.2f} ms, enabled "
        f"{enabled_s * 1e3:.2f} ms "
        f"({payload['enabled_overhead_fraction']:+.1%})"
    )
    # Residual-trajectory rows amortize over O(n) LU work.
    assert enabled_s < 1.5 * disabled_s


def test_bench_kron_instrumentation_overhead(benchmark):
    """Kronecker tier: matvec counters in the uniformized VI hot loop."""
    from repro.ctmdp.kron import kron_farm_model
    from repro.ctmdp.value_iteration import relative_value_iteration

    def measure():
        kmdp = kron_farm_model(3, 7)  # 8^3 = 512 joint states
        solve = lambda: relative_value_iteration(  # noqa: E731
            kmdp, span_tolerance=1e-6
        )
        solve()  # warm-up
        disabled_s, disabled = _best_of(solve)
        registry = MetricsRegistry()

        def enabled_run():
            with instrument(metrics=registry):
                return solve()

        enabled_s, enabled = _best_of(enabled_run)
        n_matvecs = registry.counter("solver.kron.matvecs").value
        return disabled_s, disabled, enabled_s, enabled, n_matvecs

    disabled_s, disabled, enabled_s, enabled, n_matvecs = once(
        benchmark, measure
    )
    assert abs(enabled.gain - disabled.gain) < 1e-12
    assert n_matvecs > 0
    payload = {
        "n_states": 512,
        "n_matvecs": int(n_matvecs),
        "disabled_s": disabled_s,
        "enabled_s": enabled_s,
        "enabled_overhead_fraction": enabled_s / disabled_s - 1.0,
    }
    _record("kron_value_iteration_512", payload)
    print(
        f"\nkron VI 512 states: disabled {disabled_s * 1e3:.2f} ms, "
        f"enabled {enabled_s * 1e3:.2f} ms "
        f"({payload['enabled_overhead_fraction']:+.1%})"
    )
    # One counter bump per generator matvec stays in the noise next to
    # the factor-wise tensor contractions themselves.
    assert enabled_s < 1.5 * disabled_s
