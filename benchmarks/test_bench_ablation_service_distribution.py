"""Ablation: robustness to the exponential-service assumption.

The CTMDP model assumes exponential service times (Section III). Real
workloads range from near-deterministic (fixed-size transfers) to
highly variable. This bench runs the exponential-assuming optimal
policy against mean-matched deterministic, Erlang-4 and H2(scv=4)
service distributions and reports the drift of the measured metrics
from the model's predictions.

Shape: power predictions stay accurate (power is dominated by *how
long* the server works -- the mean -- not by service variability), the
queue/waiting predictions drift with the service scv in the direction
Pollaczek-Khinchine dictates (less waiting for scv < 1, more for
scv > 1), and the policy remains functional -- no pathologies.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import ResultCache
from repro.dpm.optimizer import optimize_weighted
from repro.dpm.presets import paper_system
from repro.policies import OptimalCTMDPPolicy
from repro.sim import PoissonProcess, simulate
from repro.sim.distributions import (
    DeterministicService,
    ErlangService,
    ExponentialService,
    HyperexponentialService,
)

WEIGHT = 1.0
DISTRIBUTIONS = (
    ("exponential", ExponentialService()),
    ("erlang4", ErlangService(4)),
    ("deterministic", DeterministicService()),
    ("h2(scv=4)", HyperexponentialService(4.0)),
)


def run_robustness(n_requests: int, seed: int):
    model = paper_system()
    result = optimize_weighted(model, WEIGHT)
    predicted = result.metrics
    rows = {}
    for name, dist in DISTRIBUTIONS:
        sim = simulate(
            provider=model.provider,
            capacity=model.capacity,
            workload=PoissonProcess(model.requestor.rate),
            policy=OptimalCTMDPPolicy(result.policy, model.capacity),
            n_requests=n_requests,
            seed=seed,
            service_distribution=dist,
        )
        rows[name] = {
            "scv": dist.scv,
            "power": sim.average_power,
            "queue": sim.average_queue_length,
            "power_err": abs(sim.average_power - predicted.average_power)
            / predicted.average_power,
            "queue_drift": (sim.average_queue_length - predicted.average_queue_length)
            / predicted.average_queue_length,
        }
    return rows


_cache = ResultCache(run_robustness)


@pytest.fixture(scope="module")
def robustness(bench_n_requests, bench_seed):
    return _cache.get(bench_n_requests, bench_seed)


def test_bench_ablation_service_distribution(benchmark, bench_n_requests, bench_seed):
    rows = _cache.bench(benchmark, bench_n_requests, bench_seed)
    print()
    for name, row in rows.items():
        print(
            f"{name:>14} (scv={row['scv']:.2f}): power={row['power']:7.3f} W "
            f"(err {row['power_err']:+.2%}), queue={row['queue']:6.3f} "
            f"(drift {row['queue_drift']:+.2%})"
        )


class TestServiceDistributionShape:
    def test_power_prediction_robust(self, robustness):
        # Power hinges on means, which every distribution preserves.
        for name, row in robustness.items():
            assert row["power_err"] < 0.08, name

    def test_queue_drift_ordered_by_scv(self, robustness):
        # Pollaczek-Khinchine direction: waiting grows with variability.
        ordered = sorted(robustness.values(), key=lambda r: r["scv"])
        drifts = [r["queue_drift"] for r in ordered]
        assert drifts == sorted(drifts)

    def test_exponential_case_is_calibrated(self, robustness):
        assert abs(robustness["exponential"]["queue_drift"]) < 0.08

    def test_high_variability_inflates_queue(self, robustness):
        # The tiny finite queue (Q=5) damps the Pollaczek-Khinchine
        # effect, but the inflation is still clearly resolvable.
        assert robustness["h2(scv=4)"]["queue_drift"] > 0.04
        assert (
            robustness["h2(scv=4)"]["queue_drift"]
            > robustness["deterministic"]["queue_drift"] + 0.05
        )
