"""Table 1: accuracy of the Little's-law queue-length approximation.

Regenerates Table 1 across the paper's input-rate sweep and asserts its
claim: the approximation ``#waiting ~= rate x waiting_time`` is "within
5% error of the actual value" (we allow 8% at the reduced bench request
count), and the waiting times decrease as the input rate rises, as in
the paper's row.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import ResultCache
from repro.experiments.table1 import format_table1, run_table1

_cache = ResultCache(lambda n: run_table1(n_requests=n))


@pytest.fixture(scope="module")
def table1_rows(bench_n_requests):
    return _cache.get(bench_n_requests)


def test_bench_table1(benchmark, bench_n_requests):
    rows = _cache.bench(benchmark, bench_n_requests)
    assert len(rows) == 6
    print()
    print(format_table1(rows))


class TestTable1Shape:
    def test_approximation_error_within_paper_band(self, table1_rows):
        for row in table1_rows:
            assert abs(row.error_percent) < 8.0, row

    def test_waiting_time_decreases_with_rate(self, table1_rows):
        waits = [r.simulated_waiting_time for r in table1_rows]
        assert waits == sorted(waits, reverse=True)

    def test_constraint_roughly_met_everywhere(self, table1_rows):
        # The policies were tuned to avg queue length <= 1; simulated
        # values sit near (not above ~10% over) the bound.
        for row in table1_rows:
            assert row.actual_queue_length <= 1.10, row

    def test_waiting_times_bracket_paper_magnitudes(self, table1_rows):
        # Paper row: 6.49 .. 3.30 s across rates 1/8 .. 1/3. Same order
        # of magnitude band here (constraint exactly at L=1 gives
        # W ~= 1/rate).
        by_rate = {round(1 / r.input_rate): r for r in table1_rows}
        assert 5.0 < by_rate[8].simulated_waiting_time < 10.0
        assert 2.0 < by_rate[3].simulated_waiting_time < 4.5
