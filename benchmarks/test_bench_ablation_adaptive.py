"""Ablation: adaptive rate tracking under non-stationary input.

Section III argues the PM can re-estimate a drifting arrival rate
(~5 % accuracy after 50 events) and adapt. This bench runs a
piecewise-rate workload whose rate steps across the paper's Figure-5
range (1/8 -> 1/3 -> 1/8) and compares:

- the *static* CTMDP policy solved for the time-average rate,
- the *adaptive* policy (sliding-window estimate + per-band re-solve),
- the static policies solved for each extreme (mismatch references).

Shape assertion: the adaptive policy achieves a better power-delay
operating point than the mismatched static extremes, and tracks the
phases (its final estimate lands near the final phase's true rate).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import ResultCache
from repro.dpm.adaptive import AdaptivePolicySolver
from repro.dpm.optimizer import optimize_weighted
from repro.dpm.presets import paper_system
from repro.policies import AdaptiveCTMDPPolicy, OptimalCTMDPPolicy
from repro.sim import PiecewiseRateProcess, simulate

WEIGHT = 1.0
SEGMENTS = ((1800.0, 1 / 8), (1800.0, 1 / 3), (1800.0, 1 / 8))
MEAN_RATE = (1 / 8 + 1 / 3 + 1 / 8) / 3


def run_comparison(n_requests: int, seed: int):
    model = paper_system(arrival_rate=MEAN_RATE)
    results = {}
    adaptive = AdaptiveCTMDPPolicy(
        AdaptivePolicySolver(model, weight=WEIGHT, band_width=0.25)
    )
    policies = {
        "adaptive": adaptive,
        "static-mean": OptimalCTMDPPolicy(
            optimize_weighted(model, WEIGHT).policy, model.capacity
        ),
        "static-low": OptimalCTMDPPolicy(
            optimize_weighted(paper_system(arrival_rate=1 / 8), WEIGHT).policy,
            model.capacity,
        ),
        "static-high": OptimalCTMDPPolicy(
            optimize_weighted(paper_system(arrival_rate=1 / 3), WEIGHT).policy,
            model.capacity,
        ),
    }
    for name, policy in policies.items():
        sim = simulate(
            provider=model.provider,
            capacity=model.capacity,
            workload=PiecewiseRateProcess(SEGMENTS),
            policy=policy,
            n_requests=n_requests,
            seed=seed,
        )
        results[name] = {
            "power": sim.average_power,
            "queue": sim.average_queue_length,
            "cost": sim.average_power + WEIGHT * sim.average_queue_length,
        }
    results["adaptive"]["final_rate_estimate"] = adaptive.current_rate_estimate()
    results["adaptive"]["n_solves"] = adaptive.n_solves
    return results


_cache = ResultCache(run_comparison)


@pytest.fixture(scope="module")
def comparison(bench_seed):
    # The workload is time-limited by the segments (5400 s ~ 960
    # requests at the mean rate); use a generous request budget.
    return _cache.get(2000, bench_seed)


def test_bench_ablation_adaptive(benchmark, bench_seed):
    results = _cache.bench(benchmark, 2000, bench_seed)
    print()
    for name, row in results.items():
        print(
            f"{name:>12}: power={row['power']:7.3f} W queue={row['queue']:6.3f} "
            f"cost={row['cost']:7.3f}"
        )
    print(
        f"adaptive solved {results['adaptive']['n_solves']} bands, "
        f"final estimate {results['adaptive']['final_rate_estimate']:.4f} /s"
    )


class TestAdaptiveShape:
    def test_adaptive_beats_mismatched_statics_on_weighted_cost(self, comparison):
        adaptive_cost = comparison["adaptive"]["cost"]
        assert adaptive_cost < comparison["static-low"]["cost"]
        assert adaptive_cost < comparison["static-high"]["cost"]

    def test_adaptive_competitive_with_mean_static(self, comparison):
        # The mean-rate static policy is a strong baseline; adaptive
        # stays within 10% of its weighted cost (and usually beats it).
        assert (
            comparison["adaptive"]["cost"]
            < 1.10 * comparison["static-mean"]["cost"]
        )

    def test_estimator_tracked_final_phase(self, comparison):
        # Final phase rate is 1/8; the window estimate should be near it.
        estimate = comparison["adaptive"]["final_rate_estimate"]
        assert estimate == pytest.approx(1 / 8, rel=0.4)

    def test_multiple_bands_solved(self, comparison):
        assert comparison["adaptive"]["n_solves"] >= 2
