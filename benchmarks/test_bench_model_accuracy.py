"""Section V's model-accuracy claim, quantified.

The paper: "the functional value and the simulated value are almost the
same. This shows that our stochastic model of the power-managed system
matches the real situation very well." This bench measures the analytic
vs simulated relative error of power, queue length and waiting time for
a spread of optimal policies and reports the worst case.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import ResultCache
from repro.dpm.optimizer import optimize_weighted
from repro.dpm.presets import paper_system
from repro.policies import OptimalCTMDPPolicy
from repro.sim import PoissonProcess, simulate

WEIGHTS = (0.2, 0.5, 1.0, 2.0, 5.0)


def measure_errors(n_requests: int, seed: int):
    model = paper_system()
    rows = []
    for weight in WEIGHTS:
        result = optimize_weighted(model, weight)
        sim = simulate(
            provider=model.provider,
            capacity=model.capacity,
            workload=PoissonProcess(model.requestor.rate),
            policy=OptimalCTMDPPolicy(result.policy, model.capacity),
            n_requests=n_requests,
            seed=seed,
        )
        m = result.metrics
        rows.append(
            {
                "weight": weight,
                "power_err": abs(sim.average_power - m.average_power)
                / m.average_power,
                "queue_err": abs(sim.average_queue_length - m.average_queue_length)
                / m.average_queue_length,
                "wait_err": abs(sim.average_waiting_time - m.average_waiting_time)
                / m.average_waiting_time,
            }
        )
    return rows


_cache = ResultCache(measure_errors)


@pytest.fixture(scope="module")
def errors(bench_n_requests, bench_seed):
    return _cache.get(bench_n_requests, bench_seed)


def test_bench_model_accuracy(benchmark, bench_n_requests, bench_seed):
    rows = _cache.bench(benchmark, bench_n_requests, bench_seed)
    print()
    for row in rows:
        print(
            f"w={row['weight']:<4g} power_err={row['power_err']:6.2%} "
            f"queue_err={row['queue_err']:6.2%} wait_err={row['wait_err']:6.2%}"
        )


class TestModelAccuracyShape:
    def test_power_error_small(self, errors):
        assert max(r["power_err"] for r in errors) < 0.05

    def test_queue_error_small(self, errors):
        assert max(r["queue_err"] for r in errors) < 0.08

    def test_waiting_error_small(self, errors):
        assert max(r["wait_err"] for r in errors) < 0.08
