"""Section V's two-state-server remark.

"When the server has only two states: active and sleeping, it can
easily be shown that the N-policy gives the minimum power compared to
other stationary policies with the same performance constraint. ...
for a system with more than two server states, the N-policy does not
give the optimal power-delay tradeoff."

This bench verifies both halves analytically on the paper's constants:

- *two states*: every deterministic weighted-optimal policy found by
  policy iteration lands exactly on an N-policy's (power, delay) point
  -- the N-policy family IS the deterministic Pareto set. The check
  runs at queue capacity 15 where losses are ~1e-9: the classical
  claim (Heyman; the paper's [12]) assumes a lossless queue, and at
  the paper's tiny Q=5 the optimizer can otherwise shave power by
  deliberately dropping requests, which the N-policy family cannot
  express. (Randomized mixtures can also interpolate *between*
  N-policies; the remark concerns the classical deterministic class.)
- *three states*: the optimum strictly beats the N-policy family --
  there are delay levels where even the best N-policy wastes power.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import ResultCache
from repro.dpm.analysis import evaluate_dpm_policy
from repro.dpm.model_policies import as_policy, n_policy_assignment
from repro.dpm.optimizer import optimize_constrained
from repro.dpm.presets import (
    PAPER_SWITCHING_ENERGY,
    PAPER_SWITCHING_TIMES,
    paper_system,
)
from repro.dpm.service_provider import ServiceProvider
from repro.dpm.service_requestor import ServiceRequestor
from repro.dpm.system import PowerManagedSystemModel


#: Deep enough that losses (~1e-9) cannot fund off-family policies.
TWO_STATE_CAPACITY = 15


def two_state_model() -> PowerManagedSystemModel:
    idx = [0, 2]
    provider = ServiceProvider.from_switching_times(
        modes=("active", "sleeping"),
        switching_times=PAPER_SWITCHING_TIMES[np.ix_(idx, idx)],
        service_rates=(1 / 1.5, 0.0),
        power=(40.0, 0.1),
        switching_energy=PAPER_SWITCHING_ENERGY[np.ix_(idx, idx)],
    )
    return PowerManagedSystemModel(
        provider, ServiceRequestor(1 / 6), capacity=TWO_STATE_CAPACITY
    )


WEIGHT_GRID = (0.3, 0.6, 1.0, 1.5, 2.5, 4.0, 8.0)


def reference_points(model: PowerManagedSystemModel) -> "list[tuple[float, float]]":
    """(power, delay) of every N-policy plus always-on."""
    from repro.dpm.model_policies import always_on_assignment

    mdp = model.build_ctmdp(0.0)
    points = []
    for n in range(1, model.capacity + 1):
        m = evaluate_dpm_policy(model, as_policy(mdp, n_policy_assignment(model, n)))
        points.append((m.average_power, m.average_queue_length))
    m = evaluate_dpm_policy(model, as_policy(mdp, always_on_assignment(model)))
    points.append((m.average_power, m.average_queue_length))
    return points


def deterministic_optimal_points(
    model: PowerManagedSystemModel,
) -> "list[tuple[float, float]]":
    """(power, delay) of the policy-iteration optimum per weight."""
    from repro.ctmdp.policy_iteration import policy_iteration

    points = []
    for weight in WEIGHT_GRID:
        policy = policy_iteration(model.build_ctmdp(weight)).policy
        m = evaluate_dpm_policy(model, policy)
        points.append((m.average_power, m.average_queue_length))
    return points


def npolicy_gaps(model: PowerManagedSystemModel) -> "list[float]":
    """Watts the exact constrained optimum saves at each N-policy's delay."""
    mdp = model.build_ctmdp(0.0)
    gaps = []
    for n in range(1, model.capacity + 1):
        npol = evaluate_dpm_policy(
            model, as_policy(mdp, n_policy_assignment(model, n))
        )
        optimal = optimize_constrained(model, npol.average_queue_length)
        gaps.append(npol.average_power - optimal.metrics.average_power)
    return gaps


def run_two_state_analysis():
    two = two_state_model()
    return {
        "two_state_optimal": deterministic_optimal_points(two),
        "two_state_reference": reference_points(two),
        "three_state_gaps": npolicy_gaps(paper_system()),
    }


_cache = ResultCache(run_two_state_analysis)


@pytest.fixture(scope="module")
def analysis():
    return _cache.get()


def _distance_to_references(point, references) -> float:
    power, delay = point
    return min(
        max(abs(power - p) / max(p, 1e-9), abs(delay - d) / max(d, 1e-9))
        for p, d in references
    )


def test_bench_two_state_npolicy(benchmark):
    results = _cache.bench(benchmark)
    print()
    for point in results["two_state_optimal"]:
        dist = _distance_to_references(point, results["two_state_reference"])
        print(
            f"2-state optimum P={point[0]:7.3f} W L={point[1]:6.3f} "
            f"(distance to N-policy family: {dist:.2e})"
        )
    print(f"3-state N-policy gaps [W]: {[f'{g:.3f}' for g in results['three_state_gaps']]}")


class TestTwoStateShape:
    def test_two_state_deterministic_optima_are_npolicies(self, analysis):
        for point in analysis["two_state_optimal"]:
            assert (
                _distance_to_references(point, analysis["two_state_reference"])
                < 1e-6
            ), point

    def test_three_state_npolicy_is_suboptimal(self, analysis):
        assert max(analysis["three_state_gaps"]) > 0.1

    def test_three_state_gap_positive_at_most_delays(self, analysis):
        positive = [g for g in analysis["three_state_gaps"] if g > 0.01]
        assert len(positive) >= 3
