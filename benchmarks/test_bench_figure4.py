"""Figure 4: power--delay tradeoff, CTMDP-optimal vs N-policies.

Regenerates the Figure-4 scatter (analytic + simulated, both families)
and asserts the paper's claims:

1. the optimal-policy curve dominates the N-policy curve -- for every
   N-policy point some optimal point has no more power at no more
   delay;
2. the analytic ("functional") values agree with simulation within a
   few percent (the paper reports "almost the same").
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import ResultCache
from repro.experiments.figure4 import format_figure4, run_figure4

_cache = ResultCache(lambda n: run_figure4(n_requests=n))


@pytest.fixture(scope="module")
def figure4_points(bench_n_requests):
    return _cache.get(bench_n_requests)


def test_bench_figure4(benchmark, bench_n_requests):
    points = _cache.bench(benchmark, bench_n_requests)
    assert len(points) >= 8
    print()
    print(format_figure4(points))


class TestFigure4Shape:
    def test_optimal_curve_dominates_npolicies(self, figure4_points):
        # At each N-policy's own delay level the exact constrained
        # optimum uses no more power (a tiny relative slack absorbs the
        # 0.01%-scale effect of the finite self-switch stand-in, whose
        # rate differs between the weighted sweep and the LP's mixture).
        from repro.dpm.optimizer import optimize_constrained
        from repro.dpm.presets import paper_system

        model = paper_system()
        for npol in (p for p in figure4_points if p.kind == "npolicy"):
            optimal = optimize_constrained(model, npol.analytic_queue_length)
            assert (
                optimal.metrics.average_power
                <= npol.analytic_power * (1 + 1e-4)
            ), f"N={npol.parameter:g} not dominated"

    def test_strictly_better_somewhere(self, figure4_points):
        from repro.dpm.optimizer import optimize_constrained
        from repro.dpm.presets import paper_system

        model = paper_system()
        margins = []
        for npol in (p for p in figure4_points if p.kind == "npolicy"):
            optimal = optimize_constrained(model, npol.analytic_queue_length)
            margins.append(npol.analytic_power - optimal.metrics.average_power)
        assert max(margins) > 0.1  # >0.1 W better at matched delay

    def test_functional_matches_simulated(self, figure4_points):
        for p in figure4_points:
            assert p.simulated_power == pytest.approx(
                p.analytic_power, rel=0.06
            ), (p.kind, p.parameter)
            assert p.simulated_queue_length == pytest.approx(
                p.analytic_queue_length, rel=0.10
            ), (p.kind, p.parameter)

    def test_npolicy_family_ordered(self, figure4_points):
        npols = sorted(
            (p for p in figure4_points if p.kind == "npolicy"),
            key=lambda p: p.parameter,
        )
        powers = [p.analytic_power for p in npols]
        delays = [p.analytic_queue_length for p in npols]
        assert powers == sorted(powers, reverse=True)
        assert delays == sorted(delays)
