"""Benchmark-suite configuration.

Each benchmark regenerates one of the paper's exhibits (or one of our
ablations) exactly once per run -- the workloads are stochastic
simulations whose cost, not per-call latency, is what matters -- and
then asserts the exhibit's *shape* (who wins, by roughly what factor,
where crossovers fall), per the reproduction contract in DESIGN.md.
"""

from __future__ import annotations

import pytest

#: Requests per simulation in the bench suite. The paper uses 50 000;
#: 12 000 keeps the full suite to a few minutes while leaving the shape
#: assertions comfortably outside noise (agreement tests use relative
#: tolerances of several percent).
BENCH_N_REQUESTS = 12_000

#: Common seed so every policy in a comparison faces the same arrivals.
BENCH_SEED = 1999


@pytest.fixture(scope="session")
def bench_n_requests() -> int:
    return BENCH_N_REQUESTS


@pytest.fixture(scope="session")
def bench_seed() -> int:
    return BENCH_SEED


def once(benchmark, fn, *args, **kwargs):
    """Run *fn* exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


class ResultCache:
    """Shares one expensive experiment run between the benchmark test
    and the shape-assertion fixtures in the same module.

    The benchmark function calls :meth:`bench`, which times the run and
    stores the result; a later fixture calls :meth:`get`, which reuses
    it (or computes without timing when the benchmark was deselected).
    """

    def __init__(self, fn):
        self._fn = fn
        self._result = None
        self._has_result = False

    def bench(self, benchmark, *args, **kwargs):
        self._result = once(benchmark, self._fn, *args, **kwargs)
        self._has_result = True
        return self._result

    def get(self, *args, **kwargs):
        if not self._has_result:
            self._result = self._fn(*args, **kwargs)
            self._has_result = True
        return self._result
