"""Figure 5: CTMDP-optimal vs greedy and timeout heuristics.

Regenerates the Figure-5 series across input rates 1/8 .. 1/3 and
asserts the paper's conclusion: "our algorithm gives best power
dissipation while satisfying the performance constraint" -- i.e. among
the policies meeting the waiting-time bound at a given rate, the
CTMDP-optimal policy draws the least power; heuristics that draw less
power violate the bound.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import ResultCache
from repro.experiments.figure5 import format_figure5, run_figure5

_cache = ResultCache(lambda n: run_figure5(n_requests=n))


@pytest.fixture(scope="module")
def figure5_points(bench_n_requests):
    return _cache.get(bench_n_requests)


def test_bench_figure5(benchmark, bench_n_requests):
    points = _cache.bench(benchmark, bench_n_requests)
    assert len(points) == 30  # 5 policies x 6 rates
    print()
    print(format_figure5(points))


def by_rate(points):
    rates = sorted({p.input_rate for p in points})
    return {rate: {p.policy: p for p in points if p.input_rate == rate} for rate in rates}


class TestFigure5Shape:
    def test_optimal_meets_constraint_everywhere(self, figure5_points):
        # Waiting time <= mean inter-arrival (10% slack for the
        # stochastic run at reduced length).
        for rate, policies in by_rate(figure5_points).items():
            p = policies["ctmdp-optimal"]
            assert p.simulated_waiting_time <= 1.10 / rate, rate

    def test_optimal_is_cheapest_among_constraint_satisfiers(self, figure5_points):
        for rate, policies in by_rate(figure5_points).items():
            bound = 1.0 / rate
            optimal_power = policies["ctmdp-optimal"].simulated_power
            for name, p in policies.items():
                if name == "ctmdp-optimal":
                    continue
                if p.simulated_waiting_time <= bound:
                    assert optimal_power <= p.simulated_power + 1e-6, (rate, name)

    def test_low_rate_optimal_wins_outright(self, figure5_points):
        # At light load (1/8, 1/7, 1/6) every heuristic keeps the server
        # up too long: the optimal policy draws strictly less power than
        # all of them.
        table = by_rate(figure5_points)
        for rate in (1 / 8, 1 / 7, 1 / 6):
            policies = table[rate]
            optimal_power = policies["ctmdp-optimal"].simulated_power
            for name, p in policies.items():
                if name != "ctmdp-optimal":
                    assert optimal_power < p.simulated_power, (rate, name)

    def test_timeout_family_ordering(self, figure5_points):
        # Longer timeouts burn more power at light load.
        table = by_rate(figure5_points)
        for rate in (1 / 8, 1 / 6):
            policies = table[rate]
            assert (
                policies["timeout(1/lambda)"].simulated_power
                > policies["timeout(0.5/lambda)"].simulated_power
                > policies["timeout(1s)"].simulated_power
            )

    def test_power_rises_with_input_rate(self, figure5_points):
        table = by_rate(figure5_points)
        rates = sorted(table)
        optimal_powers = [table[r]["ctmdp-optimal"].simulated_power for r in rates]
        assert optimal_powers == sorted(optimal_powers)
