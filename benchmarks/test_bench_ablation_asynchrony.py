"""Ablation: asynchronous vs clock-driven (time-sliced) power manager.

The paper's practicality claim against the discrete-time model of [11]:
a per-time-slice PM "results in heavy signal traffic and heavy load on
the system resources", while the CTMDP policy is asynchronous -- it
acts only on state changes.

This bench compares:

- the CTMDP policy executed natively (asynchronously), against
- the [11]-style policy -- solved on the no-transfer-state model, whose
  power-down decisions live in stable states, exactly what a clocked
  manager can act on -- executed behind a :class:`~repro.policies.
  synchronous.SynchronousPolicyWrapper` at several slice lengths ``L``.

(The CTMDP table itself cannot be clocked: its power-down decisions
exist only at service-completion instants, which a clock never
observes -- the sharpest form of the asynchrony argument.)

Reported per manager: PM activity (decision points per generated
request: ticks vs state-change invocations) and achieved power/delay.
Shape: the clocked manager needs a short slice -- an order of magnitude
more PM activity -- to approach the asynchronous metrics, and a coarse
slice degrades both.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import ResultCache
from repro.dpm.optimizer import optimize_weighted
from repro.dpm.presets import paper_system
from repro.policies import OptimalCTMDPPolicy
from repro.policies.synchronous import SynchronousPolicyWrapper
from repro.sim import PoissonProcess, simulate

WEIGHT = 1.0
TIME_SLICES = (0.05, 0.5, 2.0)


def run_pm_activity_comparison(n_requests: int, seed: int):
    model = paper_system()
    ctmdp_table = optimize_weighted(model, WEIGHT).policy
    # The clocked manager's decision logic: the [11]-style model whose
    # power-down decisions live in stable states (see module docstring).
    lumped_model = paper_system(include_transfer_states=False)
    lumped_table = optimize_weighted(lumped_model, WEIGHT).policy
    rows = {}

    def run(policy):
        return simulate(
            provider=model.provider,
            capacity=model.capacity,
            workload=PoissonProcess(model.requestor.rate),
            policy=policy,
            n_requests=n_requests,
            seed=seed,
        )

    async_sim = run(OptimalCTMDPPolicy(ctmdp_table, model.capacity))
    rows["asynchronous"] = {
        "decisions_per_request": async_sim.n_pm_invocations / n_requests,
        "power": async_sim.average_power,
        "queue": async_sim.average_queue_length,
    }
    for slice_len in TIME_SLICES:
        wrapper = SynchronousPolicyWrapper(
            OptimalCTMDPPolicy(lumped_table, model.capacity),
            time_slice=slice_len,
        )
        sim = run(wrapper)
        rows[f"clocked(L={slice_len:g})"] = {
            "decisions_per_request": wrapper.n_ticks / n_requests,
            "power": sim.average_power,
            "queue": sim.average_queue_length,
        }
    return rows


_cache = ResultCache(run_pm_activity_comparison)


@pytest.fixture(scope="module")
def comparison(bench_n_requests, bench_seed):
    return _cache.get(bench_n_requests, bench_seed)


def test_bench_ablation_asynchrony(benchmark, bench_n_requests, bench_seed):
    rows = _cache.bench(benchmark, bench_n_requests, bench_seed)
    print()
    for name, row in rows.items():
        print(
            f"{name:>16}: {row['decisions_per_request']:8.2f} decisions/request, "
            f"power={row['power']:7.3f} W, queue={row['queue']:6.3f}"
        )


class TestAsynchronyShape:
    def test_async_activity_is_modest(self, comparison):
        # A handful of decision points per request (arrival, completion,
        # switch completions), independent of any clock.
        assert comparison["asynchronous"]["decisions_per_request"] < 10

    def test_fine_clock_needs_order_of_magnitude_more_activity(self, comparison):
        fine = comparison["clocked(L=0.05)"]
        async_row = comparison["asynchronous"]
        # To react as promptly as the asynchronous PM, the clock must
        # tick far more often than events occur.
        assert (
            fine["decisions_per_request"]
            > 10 * async_row["decisions_per_request"]
        )
        # And even then the asynchronous PM's weighted cost is no worse.
        async_cost = async_row["power"] + WEIGHT * async_row["queue"]
        fine_cost = fine["power"] + WEIGHT * fine["queue"]
        assert async_cost <= 1.05 * fine_cost

    def test_coarse_clock_degrades_weighted_cost(self, comparison):
        coarse = comparison["clocked(L=2)"]
        fine = comparison["clocked(L=0.05)"]
        coarse_cost = coarse["power"] + WEIGHT * coarse["queue"]
        fine_cost = fine["power"] + WEIGHT * fine["queue"]
        assert coarse_cost > fine_cost

    def test_activity_scales_inversely_with_slice(self, comparison):
        activities = [
            comparison[f"clocked(L={s:g})"]["decisions_per_request"]
            for s in TIME_SLICES
        ]
        assert activities == sorted(activities, reverse=True)
        assert activities[0] > 10 * activities[-1]
