"""Ablation: continuous-time vs time-sliced ([11]) formulation.

The paper's first criticism of [11]: "the power-managed system is
modeled in the discrete-time domain, which limits its [use] in real
applications". This bench makes the cost of time-slicing quantitative
on the lumped (no-transfer-state, i.e. [11]-style) model:

- the per-slice optimal cost rate exceeds the CTMDP optimum at every
  slice length ``L`` and converges to it monotonically as ``L -> 0``;
- per-slice control also means one PM decision per slice: the bench
  reports decisions/second alongside, connecting to the asynchrony
  ablation (the CT policy spends ~0.5 decisions/second at this load).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import ResultCache
from repro.ctmdp.policy_iteration import policy_iteration
from repro.dpm.presets import paper_system
from repro.dtmdp.discretize import discretize_ctmdp, slice_metric_rates
from repro.dtmdp.solvers import dt_policy_iteration

WEIGHT = 1.0
SLICES = (4.0, 2.0, 1.0, 0.5, 0.1, 0.02)


def run_discretization_sweep():
    model = paper_system(include_transfer_states=False)
    ct_gain = policy_iteration(model.build_ctmdp(WEIGHT)).gain
    rows = []
    for slice_length in SLICES:
        d = discretize_ctmdp(model, slice_length, weight=WEIGHT)
        result = dt_policy_iteration(d.mdp)
        rates = slice_metric_rates(d, result.assignment)
        rows.append(
            {
                "slice": slice_length,
                "gain_rate": d.gain_rate(result.gain),
                "excess": d.gain_rate(result.gain) - ct_gain,
                "power": rates["power"],
                "decisions_per_second": 1.0 / slice_length,
            }
        )
    return ct_gain, rows


_cache = ResultCache(run_discretization_sweep)


@pytest.fixture(scope="module")
def sweep():
    return _cache.get()


def test_bench_ablation_discretization(benchmark):
    ct_gain, rows = _cache.bench(benchmark)
    print()
    print(f"CT optimum: {ct_gain:.4f} cost rate")
    for row in rows:
        print(
            f"L={row['slice']:5.2f}: cost rate={row['gain_rate']:8.4f} "
            f"(+{row['excess']:6.4f}), power={row['power']:7.3f} W, "
            f"{row['decisions_per_second']:6.1f} PM decisions/s"
        )


class TestDiscretizationShape:
    def test_ct_lower_bounds_every_slice(self, sweep):
        ct_gain, rows = sweep
        for row in rows:
            assert row["gain_rate"] >= ct_gain - 1e-6, row["slice"]

    def test_monotone_convergence(self, sweep):
        _, rows = sweep
        excesses = [row["excess"] for row in rows]  # coarse -> fine
        assert excesses == sorted(excesses, reverse=True)

    def test_fine_slice_converges(self, sweep):
        ct_gain, rows = sweep
        finest = rows[-1]
        assert finest["gain_rate"] == pytest.approx(ct_gain, rel=0.005)

    def test_coarse_slice_pays_visibly(self, sweep):
        ct_gain, rows = sweep
        coarsest = rows[0]
        assert coarsest["excess"] > 0.02 * ct_gain  # > 2% of the optimum

    def test_convergence_costs_decision_rate(self, sweep):
        # Matching CT within 0.5% requires ~50 decisions/s; the CT PM
        # needs about 0.5/s at this load (asynchrony bench).
        _, rows = sweep
        finest = rows[-1]
        assert finest["decisions_per_second"] >= 50.0
