"""Ablation: discounted vs average-cost optimization (Theorem 2.3).

The paper optimizes the limiting-average criterion but develops the
discounted criterion alongside it (Section II). Theorem 2.3 says the
discounted-optimal policies converge to an average-optimal policy as
the discount factor approaches zero. This bench sweeps the discount
factor on the paper's model and reports, per factor, the average-cost
gain of the discounted-optimal policy -- showing the convergence and
where myopia starts to hurt.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import ResultCache
from repro.ctmdp.discounted import discounted_policy_iteration
from repro.ctmdp.policy import evaluate_policy
from repro.ctmdp.policy_iteration import policy_iteration
from repro.dpm.presets import paper_system

WEIGHT = 1.0
DISCOUNTS = (10.0, 1.0, 0.1, 0.01, 1e-3, 1e-5)


def discount_sweep():
    mdp = paper_system().build_ctmdp(WEIGHT)
    optimal_gain = policy_iteration(mdp).gain
    rows = []
    for a in DISCOUNTS:
        disc = discounted_policy_iteration(mdp, discount=a)
        achieved = evaluate_policy(disc.policy).gain
        rows.append(
            {
                "discount": a,
                "achieved_gain": achieved,
                "regret": achieved - optimal_gain,
            }
        )
    return optimal_gain, rows


_cache = ResultCache(discount_sweep)


@pytest.fixture(scope="module")
def sweep():
    return _cache.get()


def test_bench_ablation_discount(benchmark):
    optimal_gain, rows = _cache.bench(benchmark)
    print()
    print(f"average-optimal gain: {optimal_gain:.4f} W-equivalent")
    for row in rows:
        print(
            f"a={row['discount']:<8g} achieved={row['achieved_gain']:8.4f} "
            f"regret={row['regret']:8.5f}"
        )


class TestDiscountShape:
    def test_small_discount_recovers_average_optimum(self, sweep):
        _, rows = sweep
        smallest = min(rows, key=lambda r: r["discount"])
        assert smallest["regret"] == pytest.approx(0.0, abs=1e-6)

    def test_regret_never_negative(self, sweep):
        _, rows = sweep
        for row in rows:
            assert row["regret"] >= -1e-8

    def test_regret_trend_toward_zero(self, sweep):
        # Regret at the largest (most myopic) discount is at least as
        # large as at the smallest.
        _, rows = sweep
        by_discount = sorted(rows, key=lambda r: r["discount"])
        assert by_discount[-1]["regret"] >= by_discount[0]["regret"] - 1e-9
