"""Frontier-sweep reuse: warm-started weight sweeps vs cold solves.

The cross-solve reuse layer's headline (DESIGN §12): a weight sweep on
a sparse-tier SYS model pays the structural construction once (skeleton
+ per-weight cost overlay), seeds each solve with the neighboring
weight's converged policy, and reuses factorizations inside each solve
-- against a cold baseline that rebuilds and re-solves every weight
from scratch. Reuse must never change results, so the acceptance is
twofold: the warm sweep is >= 2x faster wall-clock AND bit-identical
(policies and metrics) to the cold sweep.

The measurement lands in ``BENCH_solver_core.json`` under
``frontier_sweep`` with both legs' timings and the ``solver.reuse.*``
counter snapshot of the warm leg.
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import once
from repro.dpm.optimizer import optimize_weighted, sweep_weights
from repro.dpm.presets import paper_system
from repro.obs.benchtrack import record_suite
from repro.obs.metrics import MetricsRegistry
from repro.obs.runtime import instrument

BENCH_JSON = Path(__file__).parent / "BENCH_solver_core.json"

#: Queue capacity of the swept SYS model: 4*1500 + 3 = 6003 states,
#: well past the dense tier so ``backend="sparse"`` is the natural
#: choice -- and large enough that the per-weight rebuild the cold leg
#: pays (skeleton construction plus ~7 cold improvement rounds) clearly
#: dominates the warm leg's one or two seeded rounds.
SWEEP_CAPACITY = 1500

#: The weight schedule (>= 16 points per the acceptance bar).
N_WEIGHTS = 24
WEIGHTS = tuple(np.linspace(0.0, 2.0, N_WEIGHTS))

#: Headline acceptance: warm wall-clock at least this factor below cold.
SPEEDUP_FLOOR = 2.0


def _fingerprint(results):
    """Exactly comparable rendering of a sweep's results."""
    return [
        (r.weight, tuple(sorted(r.policy.as_dict().items())), r.metrics)
        for r in results
    ]


def _cold_sweep(model):
    """Every weight from scratch: rebuilt model, unseeded solver, no
    within-solve reuse -- the pre-reuse-layer cost of the sweep."""
    results = []
    for w in WEIGHTS:
        model.clear_caches()
        results.append(
            optimize_weighted(
                model, w, backend="sparse", reuse=False
            )
        )
    return results


def _warm_sweep(model):
    return sweep_weights(model, list(WEIGHTS), backend="sparse")


def _reuse_counters(registry: MetricsRegistry):
    return {
        name: doc["value"]
        for name, doc in registry.to_dict().items()
        if name.startswith("solver.reuse.") and "value" in doc
    }


def test_bench_frontier_sweep(benchmark):
    def measure():
        model = paper_system(capacity=SWEEP_CAPACITY)
        start = time.perf_counter()
        cold = _cold_sweep(model)
        cold_s = time.perf_counter() - start
        model.clear_caches()
        metrics = MetricsRegistry()
        with instrument(metrics=metrics):
            start = time.perf_counter()
            warm = _warm_sweep(model)
            warm_s = time.perf_counter() - start
        return cold, cold_s, warm, warm_s, _reuse_counters(metrics)

    cold, cold_s, warm, warm_s, counters = once(benchmark, measure)

    speedup = cold_s / warm_s
    identical = _fingerprint(warm) == _fingerprint(cold)
    record_suite(
        BENCH_JSON,
        "frontier_sweep",
        {
            "capacity": SWEEP_CAPACITY,
            "n_states": 4 * SWEEP_CAPACITY + 3,
            "n_weights": N_WEIGHTS,
            "cold_sweep_s": cold_s,
            "warm_sweep_s": warm_s,
            "speedup": speedup,
            "bit_identical": identical,
            "reuse_counters": counters,
        },
    )
    print(
        f"\nfrontier sweep ({N_WEIGHTS} weights, "
        f"{4 * SWEEP_CAPACITY + 3} states): cold {cold_s:.2f}s, warm "
        f"{warm_s:.2f}s, speedup {speedup:.1f}x, "
        f"identical={identical}"
    )
    print(f"reuse counters: {counters}")

    # Acceptance: bit-identical results, materially faster.
    assert identical, "warm sweep diverged from the cold baseline"
    assert speedup >= SPEEDUP_FLOOR
    # The reuse machinery actually engaged, it didn't just win on noise.
    assert counters.get("solver.reuse.skeleton_builds") == 1
    assert counters.get("solver.reuse.skeleton_hits", 0) >= N_WEIGHTS - 1
    assert counters.get("solver.reuse.warm_start_seeds", 0) == N_WEIGHTS - 1
    assert counters.get("solver.reuse.final_reevaluations", 0) >= 1
    # An occasional harmful seed is expected (the excursion guard
    # rejects it and re-solves cold); wholesale rejection would mean
    # the warm chain never actually engages.
    assert (
        counters.get("solver.reuse.warm_start_rejected", 0) <= N_WEIGHTS // 4
    )
