"""Ablation: policy iteration vs LP vs value iteration.

The paper claims "the policy iteration algorithm ... tends to be more
efficient than the linear programming method" of [11]. This bench times
all three solvers on the same model family and checks:

- all solvers reach the same optimal gain;
- policy iteration converges in a handful of evaluations;
- value iteration's sweep count explodes with the self-switch
  stand-in's stiffness (why the paper-scale model uses PI/LP).

Timing columns are reported by pytest-benchmark; the stiffness effect
is asserted structurally (sweep counts), which is robust to machine
speed.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import once
from repro.ctmdp.linear_program import solve_average_cost_lp
from repro.ctmdp.policy_iteration import policy_iteration
from repro.ctmdp.value_iteration import relative_value_iteration
from repro.dpm.presets import paper_system

WEIGHT = 1.0


@pytest.fixture(scope="module")
def soft_mdp():
    return paper_system(self_switch_rate=50.0).build_ctmdp(WEIGHT)


@pytest.fixture(scope="module")
def stiff_mdp():
    return paper_system(self_switch_rate=2000.0).build_ctmdp(WEIGHT)


def test_bench_policy_iteration(benchmark, soft_mdp):
    result = once(benchmark, policy_iteration, soft_mdp)
    assert result.iterations <= 15


def test_bench_linear_program(benchmark, soft_mdp):
    result = once(benchmark, solve_average_cost_lp, soft_mdp)
    assert result.gain > 0


def test_bench_value_iteration(benchmark, soft_mdp):
    result = once(
        benchmark, relative_value_iteration, soft_mdp, span_tolerance=1e-8
    )
    assert result.iterations > 10


class TestSolverAblationShape:
    def test_all_gains_agree(self, soft_mdp):
        pi = policy_iteration(soft_mdp)
        lp = solve_average_cost_lp(soft_mdp)
        vi = relative_value_iteration(soft_mdp, span_tolerance=1e-9)
        assert lp.gain == pytest.approx(pi.gain, rel=1e-7)
        assert vi.gain == pytest.approx(pi.gain, rel=1e-5)

    def test_value_iteration_suffers_from_stiffness(self, soft_mdp, stiff_mdp):
        soft = relative_value_iteration(soft_mdp, span_tolerance=1e-6)
        stiff = relative_value_iteration(stiff_mdp, span_tolerance=1e-6)
        # Sweeps scale with the uniformization rate (2000/50 = 40x).
        assert stiff.iterations > 10 * soft.iterations

    def test_policy_iteration_immune_to_stiffness(self, soft_mdp, stiff_mdp):
        assert policy_iteration(stiff_mdp).iterations <= 2 * max(
            policy_iteration(soft_mdp).iterations, 4
        )

    def test_pi_faster_than_vi_wall_clock(self, soft_mdp):
        t0 = time.perf_counter()
        policy_iteration(soft_mdp)
        pi_time = time.perf_counter() - t0
        t0 = time.perf_counter()
        relative_value_iteration(soft_mdp, span_tolerance=1e-9)
        vi_time = time.perf_counter() - t0
        assert pi_time < vi_time
