"""Robustness-layer overhead: the no-fault hot path must stay <3 %.

Two costs were added by the fault-tolerance PR, and both are designed to
be invisible when nothing fails:

- **Solver guardrails**: every evaluation solve now pays one residual
  acceptance check (O(n^2) matvec next to the O(n^3) factorization).
  Measured as policy iteration with guardrails enabled vs the
  ``guardrails_disabled()`` escape hatch (the pre-guardrail baseline).
- **Fault-tolerant pool**: per-worker pipes, deadline bookkeeping, and
  chunk-attribution state replace the previous plain ``Pool.map``.
  Measured against an inline minimal fork-pool control that reproduces
  the old dispatch (same ``_WORK`` publication, same chunking, no
  recovery machinery), on a replication workload where compute
  dominates -- exactly the no-fault production profile.

Both overhead fractions are recorded in ``BENCH_robust_overhead.json``
and asserted <3 %.
"""

from __future__ import annotations

import multiprocessing
import time
from pathlib import Path

from benchmarks.conftest import BENCH_SEED, once
from repro.obs.benchtrack import record_suite
from repro.ctmdp.compiled import compile_ctmdp
from repro.ctmdp.policy_iteration import policy_iteration
from repro.dpm.presets import paper_service_provider, paper_system
from repro.policies import GreedyPolicy
from repro.robust.guardrails import guardrails_disabled
from repro.sim import PoissonProcess, simulate
from repro.sim.parallel import _chunk_indices, parallel_map
import repro.sim.parallel as parallel_module

BENCH_JSON = Path(__file__).parent / "BENCH_robust_overhead.json"

#: Headline budget: the no-fault hot path may cost at most 3 % extra.
OVERHEAD_BUDGET = 0.03

#: Solver-scaling operating point: large enough that the O(n^3)
#: factorization dominates the O(n^2) acceptance check, matching the
#: regime of benchmarks/test_bench_solver_scaling.py. (At capacity 100
#: the ~0.2 ms/solve residual check alone is ~5 % of the end-to-end
#: time, so the budget assertion there measured the operating point,
#: not the design.)
POOL_CAPACITY_SOLVER = 200

POOL_N_JOBS = 2
POOL_N_REPLICATIONS = 8
POOL_N_REQUESTS = 4_000


def _record(key: str, payload) -> None:
    """Merge one measurement into the canonical bench file (schema,
    manifest, and flattened comparable metrics -- see
    :mod:`repro.obs.benchtrack`)."""
    record_suite(BENCH_JSON, key, payload)


def _best_of(fn, repeats: int = 5):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _best_of_pair(fn_a, fn_b, repeats: int = 7):
    """Best-of timings of two alternately-run callables.

    Interleaving means slow clock-speed drift hits both sides equally,
    where sequential best-of blocks would attribute the drift to
    whichever ran second.
    """
    best_a = best_b = float("inf")
    result_a = result_b = None
    for _ in range(repeats):
        start = time.perf_counter()
        result_a = fn_a()
        best_a = min(best_a, time.perf_counter() - start)
        start = time.perf_counter()
        result_b = fn_b()
        best_b = min(best_b, time.perf_counter() - start)
    return best_a, result_a, best_b, result_b


def test_bench_guardrail_overhead(benchmark):
    """Residual acceptance check vs raw ``np.linalg.solve`` baseline."""

    def measure():
        mdp = paper_system(capacity=POOL_CAPACITY_SOLVER).build_ctmdp(weight=1.0)
        compile_ctmdp(mdp)  # warm the lowering cache out of the timing

        def baseline_run():
            with guardrails_disabled():
                return policy_iteration(mdp)

        guarded_s, guarded, baseline_s, baseline = _best_of_pair(
            lambda: policy_iteration(mdp), baseline_run
        )
        return guarded_s, guarded, baseline_s, baseline

    guarded_s, guarded, baseline_s, baseline = once(benchmark, measure)
    # The acceptance check must not change the solution.
    assert guarded.gain == baseline.gain
    assert guarded.policy.as_dict() == baseline.policy.as_dict()
    overhead = guarded_s / baseline_s - 1.0
    _record(
        "policy_iteration_q100_guardrails",
        {
            "capacity": POOL_CAPACITY_SOLVER,
            "baseline_s": baseline_s,
            "guarded_s": guarded_s,
            "overhead_fraction": overhead,
            "budget": OVERHEAD_BUDGET,
        },
    )
    print(
        f"\nguardrails: baseline {baseline_s * 1e3:.2f} ms, guarded "
        f"{guarded_s * 1e3:.2f} ms ({overhead:+.2%})"
    )
    assert overhead < OVERHEAD_BUDGET


def _replicate(seed: int):
    provider = paper_service_provider()
    return simulate(
        provider=provider,
        capacity=5,
        workload=PoissonProcess(1 / 6),
        policy=GreedyPolicy(provider),
        n_requests=POOL_N_REQUESTS,
        seed=seed,
    )


def _plain_chunk(bounds):
    """Chunk runner of the minimal control pool (no fault machinery)."""
    fn, items = parallel_module._WORK
    return [fn(items[i]) for i in range(bounds[0], bounds[1])]


def _plain_pool_map(fn, items, n_jobs):
    """The pre-fault-tolerance dispatch: plain fork ``Pool.map`` over
    the same ``_WORK`` publication and chunking as ``parallel_map``."""
    items = list(items)
    chunks = _chunk_indices(len(items), n_jobs * 4)
    context = multiprocessing.get_context("fork")
    parallel_module._WORK = (fn, items)
    try:
        with context.Pool(processes=n_jobs) as pool:
            payloads = pool.map(
                _plain_chunk, [(c.start, c.stop) for c in chunks]
            )
    finally:
        parallel_module._WORK = None
    return [result for chunk in payloads for result in chunk]


def test_bench_fault_tolerant_pool_overhead(benchmark):
    """Fault-tolerant pool vs minimal plain fork pool, no faults."""
    seeds = [BENCH_SEED + k for k in range(POOL_N_REPLICATIONS)]

    def measure():
        fault_tolerant_s, ft_results = _best_of(
            lambda: parallel_map(_replicate, seeds, n_jobs=POOL_N_JOBS),
            repeats=3,
        )
        plain_s, plain_results = _best_of(
            lambda: _plain_pool_map(_replicate, seeds, POOL_N_JOBS),
            repeats=3,
        )
        return fault_tolerant_s, ft_results, plain_s, plain_results

    fault_tolerant_s, ft_results, plain_s, plain_results = once(
        benchmark, measure
    )
    # Identical work, identical results -- the pools differ only in
    # dispatch machinery.
    assert ft_results == plain_results
    overhead = fault_tolerant_s / plain_s - 1.0
    _record(
        "replication_pool",
        {
            "n_jobs": POOL_N_JOBS,
            "n_replications": POOL_N_REPLICATIONS,
            "n_requests": POOL_N_REQUESTS,
            "plain_pool_s": plain_s,
            "fault_tolerant_s": fault_tolerant_s,
            "overhead_fraction": overhead,
            "budget": OVERHEAD_BUDGET,
        },
    )
    print(
        f"\npool: plain {plain_s:.3f} s, fault-tolerant "
        f"{fault_tolerant_s:.3f} s ({overhead:+.2%})"
    )
    assert overhead < OVERHEAD_BUDGET


#: Sparse-gate operating point: SYS at 4*25000 + 3 = 100003 states, the
#: issue's 1e5-state target for the CSR-view admission diagnostics.
SPARSE_GATE_CAPACITY = 25_000


def test_bench_sparse_admission_overhead(benchmark):
    """CSR-view admission diagnostics vs the 1e5-state sparse solve.

    The gate's structural/numerical reductions run on the sparse COO
    entries without densifying anything; their cost is additive to the
    solve, so the overhead fraction is gate-time / solve-time. Must
    stay under the same 3 % hot-path budget as the dense gate.
    """
    from repro.robust.admission import admit_ctmdp

    def measure():
        model = paper_system(capacity=SPARSE_GATE_CAPACITY)
        mdp = model.build_ctmdp(weight=1.0, backend="sparse")
        check_s, report = _best_of(
            lambda: admit_ctmdp(mdp, backend="sparse"), repeats=5
        )
        solve_s, result = _best_of(lambda: policy_iteration(mdp), repeats=3)
        return check_s, report, solve_s, result

    check_s, report, solve_s, result = once(benchmark, measure)
    assert report.verdict == "ok"
    assert report.diagnostics.get("admission_view") == "sparse"
    import numpy as np

    assert np.isfinite(result.gain)
    overhead = check_s / solve_s
    _record(
        "sparse_admission_gate",
        {
            "capacity": SPARSE_GATE_CAPACITY,
            "n_states": 4 * SPARSE_GATE_CAPACITY + 3,
            "level": "standard",
            "check_s": check_s,
            "solve_s": solve_s,
            "overhead_fraction": overhead,
            "budget": OVERHEAD_BUDGET,
        },
    )
    print(
        f"\nsparse gate: check {check_s * 1e3:.1f} ms on a "
        f"{solve_s:.2f} s solve ({overhead:+.2%})"
    )
    assert overhead < OVERHEAD_BUDGET


def test_bench_admission_overhead(benchmark):
    """Standard-level admission vs the raw end-to-end solve.

    The admitted pipeline builds once, checks, and solves the mdp the
    gate already built (``report.admitted_mdp``); the admission cost is
    the structural/numerical reductions on the compiled arrays, and it
    must stay under 3 % of the end-to-end solve on the paper preset.
    """
    from repro.robust.admission import admit_model

    def measure():
        model = paper_system(capacity=POOL_CAPACITY_SOLVER)

        def bare():
            return policy_iteration(model.build_ctmdp(weight=1.0))

        def admitted():
            report = admit_model(model, level="standard", weight=1.0)
            return policy_iteration(report.admitted_mdp)

        bare_s, bare_result, admitted_s, admitted_result = _best_of_pair(
            bare, admitted
        )
        return bare_s, bare_result, admitted_s, admitted_result

    bare_s, bare_result, admitted_s, admitted_result = once(benchmark, measure)
    # Admission observes; it must not perturb the solution.
    assert admitted_result.gain == bare_result.gain
    assert admitted_result.policy.as_dict() == bare_result.policy.as_dict()
    overhead = admitted_s / bare_s - 1.0
    _record(
        "admission_gate",
        {
            "capacity": POOL_CAPACITY_SOLVER,
            "level": "standard",
            "bare_s": bare_s,
            "admitted_s": admitted_s,
            "overhead_fraction": overhead,
            "budget": OVERHEAD_BUDGET,
        },
    )
    print(
        f"\nadmission: bare {bare_s * 1e3:.2f} ms, admitted "
        f"{admitted_s * 1e3:.2f} ms ({overhead:+.2%})"
    )
    assert overhead < OVERHEAD_BUDGET
