"""Scalability: solver cost vs state-space size.

The paper's model is tiny (23 joint states); real devices have more
modes and deeper queues. This bench grows the queue capacity (the state
count grows linearly: ``n = modes*(Q+1) + actives*Q``) and times policy
iteration and the LP, asserting both stay comfortably interactive and
that policy iteration's round count stays flat -- the practical
property that lets the adaptive PM re-solve online.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import once
from repro.ctmdp.linear_program import solve_average_cost_lp
from repro.ctmdp.policy_iteration import policy_iteration
from repro.dpm.presets import paper_system

CAPACITIES = (5, 20, 60)


def solve_all(capacity: int):
    mdp = paper_system(capacity=capacity).build_ctmdp(weight=1.0)
    pi = policy_iteration(mdp)
    lp = solve_average_cost_lp(mdp)
    return mdp.n_states, pi, lp


@pytest.mark.parametrize("capacity", CAPACITIES)
def test_bench_solver_scaling(benchmark, capacity):
    n_states, pi, lp = once(benchmark, solve_all, capacity)
    print(f"\nQ={capacity}: {n_states} states, PI rounds={pi.iterations}")
    assert lp.gain == pytest.approx(pi.gain, rel=1e-6)


class TestScalingShape:
    def test_pi_round_count_flat(self):
        rounds = []
        for capacity in CAPACITIES:
            mdp = paper_system(capacity=capacity).build_ctmdp(weight=1.0)
            rounds.append(policy_iteration(mdp).iterations)
        # Policy iteration's empirical round count is nearly constant in
        # the state count for this model family.
        assert max(rounds) <= 3 * max(min(rounds), 3)

    def test_metrics_converge_with_capacity(self):
        # Enlarging the buffer stops mattering once losses vanish: gains
        # at Q=20 and Q=60 nearly coincide, while Q=5 differs.
        gains = {
            capacity: policy_iteration(
                paper_system(capacity=capacity).build_ctmdp(weight=1.0)
            ).gain
            for capacity in CAPACITIES
        }
        assert gains[20] == pytest.approx(gains[60], rel=5e-3)
