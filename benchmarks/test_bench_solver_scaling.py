"""Scalability: solver cost vs state-space size.

The paper's model is tiny (23 joint states); real devices have more
modes and deeper queues. This bench grows the queue capacity (the state
count grows linearly: ``n = modes*(Q+1) + actives*Q``) and times policy
iteration and the LP, asserting both stay comfortably interactive and
that policy iteration's round count stays flat -- the practical
property that lets the adaptive PM re-solve online.

It also measures the two perf pillars of the solver core -- the
compiled backend against the dict-based reference path, and the
process-pool replication engine against a serial run -- recording
wall-clock numbers into ``BENCH_solver_core.json`` next to this file.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import numpy as np
import pytest

from benchmarks.conftest import BENCH_SEED, once
from repro.obs.benchtrack import record_suite
from repro.ctmdp.compiled import compile_ctmdp
from repro.ctmdp.linear_program import solve_average_cost_lp
from repro.ctmdp.policy_iteration import policy_iteration
from repro.dpm.presets import paper_service_provider, paper_system
from repro.policies import GreedyPolicy
from repro.sim.batch import run_replications
from repro.sim.workload import PoissonProcess

CAPACITIES = (5, 20, 60)

BENCH_JSON = Path(__file__).parent / "BENCH_solver_core.json"


def _record(key: str, payload) -> None:
    """Merge one measurement into the canonical bench file (schema,
    manifest, and flattened comparable metrics -- see
    :mod:`repro.obs.benchtrack`)."""
    record_suite(BENCH_JSON, key, payload)


def _best_of(fn, repeats: int = 3):
    """(best wall-clock seconds, last result) over *repeats* calls."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def solve_all(capacity: int):
    mdp = paper_system(capacity=capacity).build_ctmdp(weight=1.0)
    pi = policy_iteration(mdp)
    lp = solve_average_cost_lp(mdp)
    return mdp.n_states, pi, lp


@pytest.mark.parametrize("capacity", CAPACITIES)
def test_bench_solver_scaling(benchmark, capacity):
    n_states, pi, lp = once(benchmark, solve_all, capacity)
    print(f"\nQ={capacity}: {n_states} states, PI rounds={pi.iterations}")
    assert lp.gain == pytest.approx(pi.gain, rel=1e-6)


def _time_backends(capacity: int):
    mdp = paper_system(capacity=capacity).build_ctmdp(weight=1.0)
    # Lowering is a one-time per-model cost amortized across re-solves
    # (frontier bisection, constrained search); warm it before timing.
    compile_ctmdp(mdp)
    ref_s, ref = _best_of(lambda: policy_iteration(mdp, backend="reference"))
    cmp_s, cmp_ = _best_of(lambda: policy_iteration(mdp, backend="compiled"))
    assert cmp_.policy.as_dict() == ref.policy.as_dict()
    assert cmp_.gain == ref.gain
    assert np.array_equal(cmp_.bias, ref.bias)
    return {
        "n_states": mdp.n_states,
        "reference_s": ref_s,
        "compiled_s": cmp_s,
        "speedup": ref_s / cmp_s,
    }


def test_bench_compiled_vs_reference(benchmark):
    rows = once(
        benchmark, lambda: {c: _time_backends(c) for c in CAPACITIES}
    )
    _record(
        "compiled_vs_reference_policy_iteration",
        {str(c): row for c, row in rows.items()},
    )
    for c in CAPACITIES:
        print(f"\nQ={c}: compiled speedup {rows[c]['speedup']:.2f}x")
    # The headline perf claim: >= 5x on the largest solver-scaling model.
    assert rows[max(CAPACITIES)]["speedup"] >= 5.0


def _run_replication_batch(n_jobs):
    provider = paper_service_provider()
    return run_replications(
        provider=provider,
        capacity=5,
        workload_factory=lambda: PoissonProcess(1 / 6),
        policy_factory=lambda: GreedyPolicy(provider),
        n_requests=3_000,
        n_replications=32,
        base_seed=BENCH_SEED,
        n_jobs=n_jobs,
    )


def test_bench_parallel_replications(benchmark):
    def measure():
        serial_s, serial = _best_of(lambda: _run_replication_batch(None), 1)
        parallel_s, parallel = _best_of(lambda: _run_replication_batch(4), 1)
        return serial_s, serial, parallel_s, parallel

    serial_s, serial, parallel_s, parallel = once(benchmark, measure)
    # Identity holds unconditionally -- each replication is a pure
    # function of its seed and pool.map preserves chunk order.
    assert parallel == serial
    payload = {
        "n_replications": 32,
        "n_requests": 3_000,
        "n_jobs": 4,
        "cpu_count": os.cpu_count(),
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s,
        "identical_to_serial": True,
    }
    _record("parallel_replication_throughput", payload)
    print(f"\n32 replications: serial {serial_s:.3f}s, "
          f"n_jobs=4 {parallel_s:.3f}s ({payload['speedup']:.2f}x)")
    # The speedup target only makes physical sense with >= 4 cores;
    # single-core machines still verify the identity contract above.
    if (os.cpu_count() or 1) >= 4:
        assert payload["speedup"] >= 2.5


class TestScalingShape:
    def test_pi_round_count_flat(self):
        rounds = []
        for capacity in CAPACITIES:
            mdp = paper_system(capacity=capacity).build_ctmdp(weight=1.0)
            rounds.append(policy_iteration(mdp).iterations)
        # Policy iteration's empirical round count is nearly constant in
        # the state count for this model family.
        assert max(rounds) <= 3 * max(min(rounds), 3)

    def test_metrics_converge_with_capacity(self):
        # Enlarging the buffer stops mattering once losses vanish: gains
        # at Q=20 and Q=60 nearly coincide, while Q=5 differs.
        gains = {
            capacity: policy_iteration(
                paper_system(capacity=capacity).build_ctmdp(weight=1.0)
            ).gain
            for capacity in CAPACITIES
        }
        assert gains[20] == pytest.approx(gains[60], rel=5e-3)
