"""Serving-runtime benchmarks: lookup latency, throughput, swap cost.

The serving PR's promise is that the decision path is a dictionary
lookup away from the admitted table -- no solver, no allocation storm --
and that a hot-swap is a pointer rebind plus one atomic file write.
Three measurements, recorded in ``BENCH_serving.json``:

- **decisions/sec** through :meth:`PolicyServer.decide` over a seeded
  request mix (informational -- absolute throughput is hardware-bound);
- **p99 lookup latency** over the same mix, asserted under 1 ms -- the
  budget that keeps a decision negligible next to even a capacity-3
  re-solve;
- **swap cost**: in-memory install (pointer rebind) and full persisted
  swap (``ArtifactStore.save``: temp + fsync + rename), the downtime a
  client could observe being bounded by the former.
"""

from __future__ import annotations

import random
import time
from pathlib import Path

from benchmarks.conftest import BENCH_SEED, once
from repro.dpm.optimizer import optimize_weighted
from repro.dpm.presets import paper_system
from repro.obs.benchtrack import record_suite
from repro.serve.artifact import ArtifactStore, compile_artifact
from repro.serve.server import PolicyServer

BENCH_JSON = Path(__file__).parent / "BENCH_serving.json"

#: Decisions timed per run; enough that p99 is a 10^2-sample statistic.
N_DECISIONS = 20_000

#: The decision path must stay negligible next to any re-solve.
P99_BUDGET_S = 1e-3

#: Swaps timed per run.
N_SWAPS = 200


def _request_mix(model, n, seed):
    """A seeded (mode, transfer, count) request mix, valid joints only."""
    rng = random.Random(seed)
    active, _ = model.provider.modes[0], None
    requests = []
    for _ in range(n):
        mode = rng.choice(model.provider.modes)
        in_transfer = mode == active and rng.random() < 0.2
        count = rng.randrange(0, model.capacity + 1)
        requests.append((mode, in_transfer, count))
    return requests


def test_bench_decision_path(benchmark):
    """Throughput and tail latency of the fresh-rung decision path."""
    model = paper_system(capacity=3)
    artifact = compile_artifact(model, optimize_weighted(model, 0.5), version=1)
    server = PolicyServer(model)
    server.install(artifact)
    requests = _request_mix(model, N_DECISIONS, BENCH_SEED)

    def measure():
        latencies = []
        started = time.perf_counter()
        for mode, in_transfer, count in requests:
            t0 = time.perf_counter()
            server.decide(mode, in_transfer, count)
            latencies.append(time.perf_counter() - t0)
        elapsed = time.perf_counter() - started
        return elapsed, latencies

    elapsed, latencies = once(benchmark, measure)
    latencies.sort()
    p50 = latencies[len(latencies) // 2]
    p99 = latencies[int(len(latencies) * 0.99)]
    decisions_per_sec = N_DECISIONS / elapsed
    record_suite(
        BENCH_JSON,
        "decision_path",
        {
            "capacity": model.capacity,
            "n_decisions": N_DECISIONS,
            "decisions_per_sec": decisions_per_sec,
            "p50_lookup_s": p50,
            "p99_lookup_s": p99,
            "p99_budget_s": P99_BUDGET_S,
        },
    )
    print(
        f"\ndecisions: {decisions_per_sec:,.0f}/s, "
        f"p50 {p50 * 1e6:.1f} us, p99 {p99 * 1e6:.1f} us"
    )
    assert p99 < P99_BUDGET_S


def test_bench_hot_swap(benchmark, tmp_path):
    """Install (pointer rebind) and persisted swap (atomic file write)."""
    model = paper_system(capacity=3)
    artifacts = [
        compile_artifact(
            model, optimize_weighted(model, weight), version=version
        )
        for version, weight in enumerate((0.5, 2.0), start=1)
    ]
    server = PolicyServer(model)
    store = ArtifactStore(tmp_path)

    def measure():
        install_total = 0.0
        persist_total = 0.0
        for i in range(N_SWAPS):
            artifact = artifacts[i % len(artifacts)]
            t0 = time.perf_counter()
            server.install(artifact)
            install_total += time.perf_counter() - t0
            t0 = time.perf_counter()
            store.save(artifact)
            persist_total += time.perf_counter() - t0
        return install_total / N_SWAPS, persist_total / N_SWAPS

    install_s, persist_s = once(benchmark, measure)
    record_suite(
        BENCH_JSON,
        "hot_swap",
        {
            "capacity": model.capacity,
            "n_swaps": N_SWAPS,
            "install_s": install_s,
            "persisted_swap_s": persist_s,
        },
    )
    print(
        f"\nswap: install {install_s * 1e6:.1f} us, persisted "
        f"{persist_s * 1e3:.3f} ms"
    )
    # A client-observable swap is the pointer rebind, not the fsync.
    assert install_s < persist_s
