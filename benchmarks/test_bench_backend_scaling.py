"""Backend-ladder scaling: dense vs sparse vs matrix-free Kronecker.

The tentpole claim of the sparse/Kronecker solver core: joint CTMDPs
with 10^5+ states solve interactively without materializing the
``O(pairs x states)`` dense generator. This bench grows the SYS queue
capacity through 10^5 states and times the COO-direct sparse build and
sparse policy iteration at each size, measuring peak memory with
tracemalloc (in a separate untimed run) against the dense lowering's
``pairs x states x 8`` byte footprint -- measured where the dense core
is feasible, estimated above that. A genuinely tensor-structured
server-farm model then runs matrix-free value iteration at 8^6 states.

The scaling curve lands in ``BENCH_solver_core.json`` under
``backend_scaling``; the acceptance assertion is the issue's headline:
at the ~10^5-state point the sparse solve's peak memory is >= 10x below
the dense footprint. ``REPRO_SCALE_MAX_STATES`` (default 300000) gates
the largest points so a nightly job can push to 10^6 states while the
default run stays a sub-minute smoke.
"""

from __future__ import annotations

import os
import time
import tracemalloc
from pathlib import Path

import pytest

from benchmarks.conftest import once
from repro.obs.benchtrack import record_suite
from repro.ctmdp.compiled import compile_ctmdp
from repro.ctmdp.kron import kron_farm_model
from repro.ctmdp.policy_iteration import policy_iteration
from repro.ctmdp.value_iteration import relative_value_iteration
from repro.dpm.presets import paper_system

BENCH_JSON = Path(__file__).parent / "BENCH_solver_core.json"

#: SYS queue capacities; state counts are 4*Q + 3 (203 ... 100003).
CAPACITIES = (50, 500, 5000, 25000)

#: Largest state count the default run attempts. Nightly CI raises this
#: (e.g. to 1_100_000) to cover the 10^6-state matrix-free point.
SCALE_MAX_STATES = int(os.environ.get("REPRO_SCALE_MAX_STATES", "300000"))

#: Dense solves are only *measured* below the ladder's dense comfort
#: zone; larger points carry the arithmetic footprint estimate instead.
DENSE_MEASURE_LIMIT = 2500

#: The headline memory claim at the ~10^5-state point.
MEMORY_ADVANTAGE = 10.0

#: (n_queues, queue_capacity) farm models: 8^6 = 262144 states by
#: default; the gated second point is 10^6 states (nightly).
FARM_POINTS = ((6, 7), (6, 9))


def _record(key: str, payload) -> None:
    """Merge one measurement into the canonical bench file (schema,
    manifest, and flattened comparable metrics -- see
    :mod:`repro.obs.benchtrack`)."""
    record_suite(BENCH_JSON, key, payload)


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def _traced_peak(fn) -> int:
    """Peak tracemalloc bytes of one *untimed* call (tracing slows the
    call, so timing and tracing are separate runs)."""
    tracemalloc.start()
    try:
        fn()
        return tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()


def _sys_point(capacity: int):
    model = paper_system(capacity=capacity)
    build_s, mdp = _timed(
        lambda: model.build_ctmdp(weight=1.0, backend="sparse")
    )
    solve_s, result = _timed(lambda: policy_iteration(mdp))
    sparse_peak = _traced_peak(lambda: policy_iteration(mdp))
    n = mdp.n_states
    n_pairs = len(mdp.pair_state)
    row = {
        "n_states": n,
        "n_pairs": n_pairs,
        "generator_nnz": int(mdp.generator.nnz),
        "sparse_build_s": build_s,
        "sparse_solve_s": solve_s,
        "sparse_peak_bytes": sparse_peak,
        "gain": result.gain,
        "dense_generator_bytes": n_pairs * n * 8,
    }
    if n <= DENSE_MEASURE_LIMIT:
        dense_mdp = model.build_ctmdp(weight=1.0)
        compile_ctmdp(dense_mdp)  # lowering is amortized; time the solve
        dense_s, dense = _timed(
            lambda: policy_iteration(dense_mdp, backend="compiled")
        )
        row["dense_solve_s"] = dense_s
        row["dense_peak_bytes"] = _traced_peak(
            lambda: policy_iteration(dense_mdp, backend="compiled")
        )
        assert abs(dense.gain - result.gain) < 1e-9 * max(abs(dense.gain), 1.0)
        assert result.policy.as_dict() == dense.policy.as_dict()
    return row


def _farm_point(n_queues: int, queue_capacity: int):
    kmdp = kron_farm_model(n_queues, queue_capacity)
    solve_s, result = _timed(
        lambda: relative_value_iteration(kmdp, span_tolerance=1e-6)
    )
    peak = _traced_peak(
        lambda: relative_value_iteration(kmdp, span_tolerance=1e-6)
    )
    n = kmdp.n_states
    return {
        "n_states": n,
        "n_actions": len(kmdp.action_set),
        "solve_s": solve_s,
        "iterations": result.iterations,
        "gain": result.gain,
        "kron_peak_bytes": peak,
        "dense_generator_bytes": len(kmdp.action_set) * n * n * 8,
    }


def test_bench_backend_scaling(benchmark):
    def measure():
        sys_rows = {}
        for capacity in CAPACITIES:
            n = 4 * capacity + 3
            if n > SCALE_MAX_STATES:
                continue
            sys_rows[str(n)] = _sys_point(capacity)
        farm_rows = {}
        for n_queues, queue_capacity in FARM_POINTS:
            n = (queue_capacity + 1) ** n_queues
            if n > SCALE_MAX_STATES:
                continue
            farm_rows[str(n)] = _farm_point(n_queues, queue_capacity)
        return sys_rows, farm_rows

    sys_rows, farm_rows = once(benchmark, measure)
    _record(
        "backend_scaling",
        {
            "scale_max_states": SCALE_MAX_STATES,
            "sys_policy_iteration_sparse": sys_rows,
            "kron_farm_value_iteration": farm_rows,
        },
    )
    for n, row in sys_rows.items():
        print(
            f"\nSYS n={n}: build {row['sparse_build_s']:.2f}s, "
            f"sparse PI {row['sparse_solve_s']:.2f}s, peak "
            f"{row['sparse_peak_bytes'] / 1e6:.1f} MB vs dense "
            f"{row['dense_generator_bytes'] / 1e6:.1f} MB"
        )
    for n, row in farm_rows.items():
        print(
            f"\nfarm n={n}: matrix-free VI {row['solve_s']:.2f}s "
            f"({row['iterations']} sweeps), peak "
            f"{row['kron_peak_bytes'] / 1e6:.1f} MB"
        )

    # Headline acceptance: at the ~10^5-state SYS point the sparse
    # solve runs interactively in >= 10x less peak memory than the
    # dense lowering's generator alone would need.
    big = [row for row in sys_rows.values() if row["n_states"] >= 100_000]
    if SCALE_MAX_STATES >= 100_003:
        assert big, "the 10^5-state point must run by default"
    for row in big:
        assert (
            row["sparse_peak_bytes"] * MEMORY_ADVANTAGE
            <= row["dense_generator_bytes"]
        )
        assert row["sparse_solve_s"] < 60.0
    # Matrix-free VI never holds anything of size O(n^2); same bar.
    for row in farm_rows.values():
        assert (
            row["kron_peak_bytes"] * MEMORY_ADVANTAGE
            <= row["dense_generator_bytes"]
        )


class TestScalingShape:
    def test_gain_stabilizes_along_the_curve(self):
        # Enlarging the buffer stops mattering once losses vanish; the
        # two smallest points already agree, pinning that the sparse
        # tier reproduces the dense tier's converged metric.
        gains = [
            policy_iteration(
                paper_system(capacity=c).build_ctmdp(
                    weight=1.0, backend="sparse"
                )
            ).gain
            for c in CAPACITIES[:2]
        ]
        assert gains[0] == pytest.approx(gains[1], rel=5e-3)
