"""Ablation: the value of the paper's transfer states.

The transfer states are the paper's modeling novelty over [11]: they
synchronize SQ and SP transitions, separate the SP's busy and idle
phases, and -- crucially -- give the *asynchronous* PM a decision point
at every service completion. This ablation builds both models on
identical constants and compares each model's *predictions* against the
event-driven simulator running the corresponding optimal policy:

- ``with-transfer`` -- the paper's model, executed natively
  (asynchronously): predictions match within a couple of percent;
- ``lumped (event-driven)`` -- the no-transfer-state model's policy
  executed asynchronously: its power-down decisions live in stable
  states like ``(active, q0)`` where *no event ever fires* during the
  idle lull, so the server never sleeps -- a catastrophic mismatch that
  shows transfer states are what make event-driven power management
  expressible at all;
- ``lumped (clocked L=0.1)`` -- the same policy under its native
  discrete-time executor (a fine 0.1 s clock): functional, but still
  predicted less accurately than the transfer-state model predicts its
  own policy (and the clock costs ~40x the PM activity; see the
  asynchrony bench).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import ResultCache
from repro.dpm.optimizer import optimize_weighted
from repro.dpm.presets import paper_system
from repro.policies import OptimalCTMDPPolicy, SynchronousPolicyWrapper
from repro.sim import PoissonProcess, simulate

WEIGHT = 1.0
CLOCK_SLICE = 0.1


def prediction_errors(n_requests: int, seed: int):
    """Relative |analytic - simulated| for the three regimes."""
    rows = {}

    def run(model, policy, busy):
        return simulate(
            provider=model.provider,
            capacity=model.capacity,
            workload=PoissonProcess(model.requestor.rate),
            policy=policy,
            n_requests=n_requests,
            seed=seed,
            busy_powerdown=busy,
        )

    def record(label, metrics, sim):
        rows[label] = {
            "power_err": abs(sim.average_power - metrics.average_power)
            / metrics.average_power,
            "queue_err": abs(sim.average_queue_length - metrics.average_queue_length)
            / max(metrics.average_queue_length, 1e-9),
            "predicted_power": metrics.average_power,
            "simulated_power": sim.average_power,
        }

    transfer_model = paper_system(include_transfer_states=True)
    transfer_result = optimize_weighted(transfer_model, WEIGHT)
    record(
        "with-transfer",
        transfer_result.metrics,
        run(
            transfer_model,
            OptimalCTMDPPolicy(transfer_result.policy, transfer_model.capacity),
            "reject",
        ),
    )

    lumped_model = paper_system(include_transfer_states=False)
    lumped_result = optimize_weighted(lumped_model, WEIGHT)
    record(
        "lumped (event-driven)",
        lumped_result.metrics,
        run(
            lumped_model,
            OptimalCTMDPPolicy(lumped_result.policy, lumped_model.capacity),
            "preempt",
        ),
    )
    record(
        f"lumped (clocked L={CLOCK_SLICE:g})",
        lumped_result.metrics,
        run(
            lumped_model,
            SynchronousPolicyWrapper(
                OptimalCTMDPPolicy(lumped_result.policy, lumped_model.capacity),
                time_slice=CLOCK_SLICE,
            ),
            "preempt",
        ),
    )
    return rows


_cache = ResultCache(prediction_errors)


@pytest.fixture(scope="module")
def errors(bench_n_requests, bench_seed):
    return _cache.get(bench_n_requests, bench_seed)


def test_bench_ablation_transfer_states(benchmark, bench_n_requests, bench_seed):
    rows = _cache.bench(benchmark, bench_n_requests, bench_seed)
    print()
    for label, row in rows.items():
        print(
            f"{label:>22}: predicted {row['predicted_power']:6.2f} W, "
            f"simulated {row['simulated_power']:6.2f} W "
            f"(power_err {row['power_err']:.2%}, queue_err {row['queue_err']:.2%})"
        )


class TestTransferStateAblationShape:
    def test_transfer_model_is_accurate(self, errors):
        row = errors["with-transfer"]
        assert row["power_err"] < 0.04
        assert row["queue_err"] < 0.08

    def test_lumped_event_driven_is_catastrophic(self, errors):
        # The asynchronous executor never reaches the lumped policy's
        # stable-state power-down decisions: the server stays awake.
        row = errors["lumped (event-driven)"]
        assert row["power_err"] > 0.5
        assert row["simulated_power"] > 3 * row["predicted_power"]

    def test_lumped_clocked_is_functional_but_less_accurate(self, errors):
        lumped = errors[f"lumped (clocked L={CLOCK_SLICE:g})"]
        with_t = errors["with-transfer"]
        assert lumped["power_err"] < 0.15  # functional under its clock
        assert (
            max(lumped["power_err"], lumped["queue_err"])
            > max(with_t["power_err"], with_t["queue_err"])
        )